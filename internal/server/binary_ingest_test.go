package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/gss"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// gsb1 encodes items as a GSB1 body, one frame per frameSize items —
// what gss-gen -format binary (or the cluster router) would post.
func gsb1(t *testing.T, items []stream.Item, frameSize int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	bw := stream.NewBinaryBatchWriter(&buf)
	for i := 0; i < len(items); i += frameSize {
		j := i + frameSize
		if j > len(items) {
			j = len(items)
		}
		if err := bw.WriteBatch(stream.HashItems(items[i:j], nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func postBinary(t *testing.T, url string, body io.Reader) *http.Response {
	t.Helper()
	resp, err := http.Post(url, stream.ContentTypeBinary, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestIngestContentTypeDispatch pins the /ingest content-type table:
// bare, NDJSON and JSON go to the text plane, the binary type to the
// frame decoder, and anything else is 415 — on both planes the known
// types keep working (the regression half of the satellite).
func TestIngestContentTypeDispatch(t *testing.T) {
	s, ts := newIngestServer(t, Options{})
	items := []stream.Item{{Src: "a", Dst: "b", Weight: 3, Time: 1}}

	for _, ct := range []string{"application/x-ndjson", "application/json; charset=utf-8", "",
		// curl --data-binary's default type: `curl --data-binary @-
		// /ingest` is the documented quickstart and stays on the text
		// plane.
		"application/x-www-form-urlencoded"} {
		resp, err := http.Post(ts.URL+"/ingest", ct, ndjson(t, items))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("Content-Type %q: status %d, want 200", ct, resp.StatusCode)
		}
	}
	resp := postBinary(t, ts.URL+"/ingest", gsb1(t, items, 16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary ingest status %d, want 200", resp.StatusCode)
	}

	for _, ct := range []string{"application/octet-stream", "text/csv", "application/x-protobuf"} {
		resp, err := http.Post(ts.URL+"/ingest", ct, bytes.NewReader([]byte("whatever")))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("Content-Type %q: status %d, want 415 (%s)", ct, resp.StatusCode, body)
		}
	}
	// Rejected bodies must not have touched the sketch: 5 accepted posts.
	if got := s.Sketch().Stats().Items; got != 5 {
		t.Fatalf("items = %d, want 5", got)
	}
}

// TestIngestBinaryMatchesNDJSON is the end-to-end plane equivalence:
// the same stream posted once as NDJSON and once as GSB1 produces
// servers that agree on every edge, the node set and the item count.
func TestIngestBinaryMatchesNDJSON(t *testing.T) {
	items := stream.Generate(stream.DatasetConfig{Name: "bin-e2e", Nodes: 80, Edges: 1500,
		DegreeSkew: 1.4, WeightSkew: 1.2, MaxWeight: 40, Seed: 31})

	for _, backend := range sketch.Backends() {
		t.Run(backend, func(t *testing.T) {
			sa, tsA := newIngestServer(t, Options{Backend: backend, Shards: 4, BatchSize: 64})
			sb, tsB := newIngestServer(t, Options{Backend: backend, Shards: 4, BatchSize: 64})

			resp := post(t, tsA.URL+"/ingest", ndjson(t, items).String())
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ndjson status %d", resp.StatusCode)
			}
			resp = postBinary(t, tsB.URL+"/ingest", gsb1(t, items, 64))
			var ack struct {
				Ingested int64 `json:"ingested"`
				Batches  int64 `json:"batches"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || ack.Ingested != int64(len(items)) {
				t.Fatalf("binary ack: status %d %+v", resp.StatusCode, ack)
			}

			if a, b := sa.Sketch().Stats().Items, sb.Sketch().Stats().Items; a != b {
				t.Fatalf("item counts diverge: ndjson %d, binary %d", a, b)
			}
			truth := map[[2]string]bool{}
			for _, it := range items {
				truth[[2]string{it.Src, it.Dst}] = true
			}
			for k := range truth {
				wa, oka := sa.Sketch().EdgeWeight(k[0], k[1])
				wb, okb := sb.Sketch().EdgeWeight(k[0], k[1])
				if oka != okb || wa != wb {
					t.Fatalf("edge %v: ndjson (%d,%v) vs binary (%d,%v)", k, wa, oka, wb, okb)
				}
			}
		})
	}
}

// TestIngestBinaryAsync drains framed batches through the worker pool.
func TestIngestBinaryAsync(t *testing.T) {
	s, ts := newIngestServer(t, Options{Backend: sketch.BackendSharded, Shards: 4,
		QueueDepth: 64, Workers: 2})
	items := stream.Generate(stream.DatasetConfig{Name: "bin-async", Nodes: 40, Edges: 600,
		DegreeSkew: 1.3, WeightSkew: 1.1, MaxWeight: 20, Seed: 12})
	resp := postBinary(t, ts.URL+"/ingest?async=1", gsb1(t, items, 50))
	var ack struct {
		Mode     string `json:"mode"`
		Enqueued int64  `json:"enqueued"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || ack.Mode != "async" || ack.Enqueued != int64(len(items)) {
		t.Fatalf("async ack: status %d %+v", resp.StatusCode, ack)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Sketch().Stats().Items != int64(len(items)) {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not drain: %d/%d", s.Sketch().Stats().Items, len(items))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestIngestBinaryBadFrame: a corrupted frame mid-body is rejected
// atomically with 400; whole frames before it are kept.
func TestIngestBinaryBadFrame(t *testing.T) {
	s, ts := newIngestServer(t, Options{})
	good := gsb1(t, []stream.Item{{Src: "x", Dst: "y", Weight: 1, Time: 1}}, 16).Bytes()
	body := append(append([]byte{}, good...), 0xFF, 0xFF, 0xFF, 0xFF, 0x0F) // forged frame length
	resp := postBinary(t, ts.URL+"/ingest", bytes.NewReader(body))
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, b)
	}
	if w, ok := s.Sketch().EdgeWeight("x", "y"); !ok || w != 1 {
		t.Fatalf("frame before the bad one lost: (%d,%v)", w, ok)
	}
}

// TestIngestBinaryStampsArrival: binary items with Time 0 get the
// arrival stamp exactly like the NDJSON plane — the windowed backend
// depends on it.
func TestIngestBinaryStampsArrival(t *testing.T) {
	now := int64(777)
	s, err := NewWithOptions(
		gss.Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8},
		Options{Backend: sketch.BackendWindowed, WindowSpan: 1 << 20,
			Now: func() int64 { return now }})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)

	resp := postBinary(t, ts.URL+"/ingest",
		gsb1(t, []stream.Item{{Src: "a", Dst: "b", Weight: 2}}, 16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if w, ok := s.Sketch().EdgeWeight("a", "b"); !ok || w != 2 {
		t.Fatalf("stamped binary item lost: (%d,%v)", w, ok)
	}
}

// TestIngestBinaryLogsVerbatim: on a logging primary, binary frames
// reach the operation log through the decode-free AppendEncoded path,
// and /log serves records identical to what the NDJSON plane would
// have logged — timestamps, labels and all.
func TestIngestBinaryLogsVerbatim(t *testing.T) {
	base := t.TempDir()
	cfg := gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}
	opt := Options{LogDir: base + "/log", LogSyncEvery: -1, Logf: quiet(t)}
	s, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	items := replicaItems(120)
	resp := postBinary(t, ts.URL+"/ingest", gsb1(t, items, 32))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary ingest status %d", resp.StatusCode)
	}

	lresp, err := http.Get(ts.URL + "/log?from=0&max=200")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("/log status %d", lresp.StatusCode)
	}
	got, err := stream.ReadAll(lresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("/log served %d records, want %d", len(got), len(items))
	}
	for i := range got {
		if got[i] != items[i] {
			t.Fatalf("log record %d = %+v, want %+v", i, got[i], items[i])
		}
	}
}
