package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/gss"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// windowItems synthesizes a time-ordered stream spanning several
// windows of the given span, with node identifiers scoped per window
// so an unbounded summary accumulates them forever.
func windowItems(n int, span int64, windows int) []stream.Item {
	items := make([]stream.Item, n)
	total := span * int64(windows)
	for i := range items {
		t := 1 + int64(i)*total/int64(n)
		win := t / span
		items[i] = stream.Item{
			Src:    fmt.Sprintf("w%d-s%d", win, i%40),
			Dst:    fmt.Sprintf("w%d-d%d", win, i%23),
			Time:   t,
			Weight: 1,
		}
	}
	return items
}

// TestWindowedEndToEnd is the acceptance scenario: a windowed server
// ingests a stream spanning several windows over NDJSON /ingest,
// queries cover only the live window, and /stats shows bounded
// residency — while the same stream on the sharded backend grows
// monotonically with stream length.
func TestWindowedEndToEnd(t *testing.T) {
	const span, windows = 100, 6
	items := windowItems(3000, span, windows)
	half := len(items) / 2

	_, windowed := newIngestServer(t, Options{Backend: sketch.BackendWindowed,
		WindowSpan: span, WindowGenerations: 4, BatchSize: 128})
	_, sharded := newIngestServer(t, Options{Backend: sketch.BackendSharded,
		Shards: 4, BatchSize: 128})

	ingest := func(ts *httptest.Server, chunk []stream.Item) {
		t.Helper()
		resp := post(t, ts.URL+"/ingest", ndjson(t, chunk).String())
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	stats := func(ts *httptest.Server) gss.Stats {
		t.Helper()
		var st gss.Stats
		getJSON(t, ts.URL+"/stats", &st)
		return st
	}

	ingest(windowed, items[:half])
	ingest(sharded, items[:half])
	wMid, sMid := stats(windowed), stats(sharded)
	ingest(windowed, items[half:])
	ingest(sharded, items[half:])
	wEnd, sEnd := stats(windowed), stats(sharded)

	// Sharded summarizes the whole stream and only grows.
	if sEnd.Items != int64(len(items)) {
		t.Fatalf("sharded items = %d, want %d", sEnd.Items, len(items))
	}
	if sEnd.IndexedNodes <= sMid.IndexedNodes || sEnd.MatrixEdges+sEnd.BufferEdges <= sMid.MatrixEdges+sMid.BufferEdges {
		t.Fatalf("sharded did not grow: mid %d nodes / %d edges, end %d / %d",
			sMid.IndexedNodes, sMid.MatrixEdges+sMid.BufferEdges,
			sEnd.IndexedNodes, sEnd.MatrixEdges+sEnd.BufferEdges)
	}
	// Windowed stays bounded: live generations within the configured
	// count, expired items accounted for, resident state a fraction of
	// the sharded one.
	if wEnd.LiveGenerations < 1 || wEnd.LiveGenerations > 4 {
		t.Fatalf("windowed LiveGenerations = %d, want 1..4", wEnd.LiveGenerations)
	}
	if wEnd.ExpiredGenerations <= wMid.ExpiredGenerations {
		t.Fatalf("window did not rotate: mid %d expired, end %d",
			wMid.ExpiredGenerations, wEnd.ExpiredGenerations)
	}
	if wEnd.Items+wEnd.ExpiredItems+wEnd.DroppedStragglers != int64(len(items)) {
		t.Fatalf("windowed item accounting: live %d + expired %d + dropped %d != %d",
			wEnd.Items, wEnd.ExpiredItems, wEnd.DroppedStragglers, len(items))
	}
	if wEnd.IndexedNodes >= sEnd.IndexedNodes {
		t.Fatalf("windowed nodes %d not bounded below sharded %d", wEnd.IndexedNodes, sEnd.IndexedNodes)
	}

	// Queries cover only the live window: last-window edges are
	// visible, first-window edges are gone.
	var edge struct {
		Found bool `json:"found"`
	}
	last := items[len(items)-1]
	getJSON(t, fmt.Sprintf("%s/edge?src=%s&dst=%s", windowed.URL, last.Src, last.Dst), &edge)
	if !edge.Found {
		t.Fatal("live-window edge not found on windowed backend")
	}
	first := items[0]
	getJSON(t, fmt.Sprintf("%s/edge?src=%s&dst=%s", windowed.URL, first.Src, first.Dst), &edge)
	if edge.Found {
		t.Fatal("expired edge still answered by windowed backend")
	}
	// Successor sets follow the window too.
	var succ struct {
		Nodes []string `json:"nodes"`
	}
	getJSON(t, windowed.URL+"/successors?v="+first.Src, &succ)
	if len(succ.Nodes) != 0 {
		t.Fatalf("expired node still has successors: %v", succ.Nodes)
	}
	// Heavy edges merge only live generations.
	var heavy []struct {
		Weight int64 `json:"weight"`
	}
	getJSON(t, windowed.URL+"/heavy?min=1", &heavy)
	var heavySum int64
	for _, he := range heavy {
		heavySum += he.Weight
	}
	if heavySum != wEnd.Items {
		t.Fatalf("heavy-edge weights sum to %d, want live items %d", heavySum, wEnd.Items)
	}
}

// TestArrivalStamping pins the timestamp-defaulting rule: items that
// arrive without "time" are stamped from the server clock, so a
// windowed backend rotates on arrival time; explicit timestamps are
// left alone.
func TestArrivalStamping(t *testing.T) {
	clock := int64(1000)
	s, err := NewWithOptions(
		gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4},
		Options{Backend: sketch.BackendWindowed, WindowSpan: 100, WindowGenerations: 4,
			Now: func() int64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)

	// Untimed items through both write endpoints land at clock time.
	post(t, ts.URL+"/insert", `{"src":"a","dst":"b"}`).Body.Close()
	post(t, ts.URL+"/ingest", `{"src":"c","dst":"d"}`).Body.Close()
	// An explicitly timed straggler is NOT re-stamped: it is older
	// than the window at clock time and must be dropped.
	post(t, ts.URL+"/ingest", `{"src":"old","dst":"e","time":5}`).Body.Close()

	var edge struct {
		Found bool `json:"found"`
	}
	getJSON(t, ts.URL+"/edge?src=a&dst=b", &edge)
	if !edge.Found {
		t.Fatal("untimed /insert item lost")
	}
	getJSON(t, ts.URL+"/edge?src=c&dst=d", &edge)
	if !edge.Found {
		t.Fatal("untimed /ingest item lost")
	}
	getJSON(t, ts.URL+"/edge?src=old&dst=e", &edge)
	if edge.Found {
		t.Fatal("explicitly timed straggler was re-stamped to now")
	}

	// Advance the clock a full window: the stamped items expire.
	clock += 200
	post(t, ts.URL+"/insert", `{"src":"fresh","dst":"b"}`).Body.Close()
	getJSON(t, ts.URL+"/edge?src=a&dst=b", &edge)
	if edge.Found {
		t.Fatal("arrival-stamped item did not expire with the clock")
	}
	getJSON(t, ts.URL+"/edge?src=fresh&dst=b", &edge)
	if !edge.Found {
		t.Fatal("fresh item lost")
	}
}

// TestAsyncIngestStampsArrival: the worker pool must see arrival
// times, not whenever the queue drains.
func TestAsyncIngestStampsArrival(t *testing.T) {
	clock := int64(1000)
	s, err := NewWithOptions(
		gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4},
		Options{Backend: sketch.BackendWindowed, WindowSpan: 100, WindowGenerations: 4,
			Workers: 1, Now: func() int64 { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp := post(t, ts.URL+"/ingest?async=1", `{"src":"a","dst":"b"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async status %d", resp.StatusCode)
	}
	s.Close() // drains the queue
	if w, ok := s.Sketch().EdgeWeight("a", "b"); !ok || w != 1 {
		t.Fatalf("async item = %d,%v want 1", w, ok)
	}
	if st := s.Sketch().Stats(); st.DroppedStragglers != 0 {
		t.Fatalf("async stamping dropped items: %+v", st)
	}
}

// TestCloseIdleServerStartsNothing is the lazy-Close regression test:
// closing (or stats-polling) a server that never saw an async ingest
// must not start the worker pool, and an idle server's lifecycle must
// not leak goroutines.
func TestCloseIdleServerStartsNothing(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := New(gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Sync traffic and a stats poll, with no network server in the
	// way: none of it may start the pool.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/ingest",
		strings.NewReader(`{"src":"a","dst":"b"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("sync ingest status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/ingest/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest stats status %d", rec.Code)
	}
	if s.startedPipeline() != nil {
		t.Fatal("pipeline started without an async ingest")
	}
	s.Close()
	if s.startedPipeline() != nil {
		t.Fatal("Close started the pipeline it was supposed to stop")
	}
	waitForGoroutines(t, before)
}

// TestCloseStopsAsyncWorkers: once async ingest starts the pool, Close
// drains it and the worker goroutines exit.
func TestCloseStopsAsyncWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := NewWithOptions(
		gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4},
		Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/ingest?async=1",
		strings.NewReader(`{"src":"a","dst":"b"}`)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async ingest status %d", rec.Code)
	}
	if s.startedPipeline() == nil {
		t.Fatal("async ingest did not start the pipeline")
	}
	s.Close()
	if w, ok := s.Sketch().EdgeWeight("a", "b"); !ok || w != 1 {
		t.Fatalf("Close lost queued work: %d,%v", w, ok)
	}
	waitForGoroutines(t, before)
}

func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > want {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to %d (now %d)", want, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
