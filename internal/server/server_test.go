package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/gss"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getJSON(t *testing.T, url string, out interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSingleAndQuery(t *testing.T) {
	_, ts := newTestServer(t)
	resp := post(t, ts.URL+"/insert", `{"src":"a","dst":"b","weight":5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	resp.Body.Close()

	var edge struct {
		Weight int64 `json:"weight"`
		Found  bool  `json:"found"`
	}
	getJSON(t, ts.URL+"/edge?src=a&dst=b", &edge)
	if !edge.Found || edge.Weight != 5 {
		t.Fatalf("edge = %+v", edge)
	}
}

func TestInsertBatch(t *testing.T) {
	_, ts := newTestServer(t)
	resp := post(t, ts.URL+"/insert",
		`[{"src":"a","dst":"b","weight":1},{"src":"b","dst":"c","weight":2},{"src":"a","dst":"b","weight":3}]`)
	var ack struct {
		Inserted int `json:"inserted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.Inserted != 3 {
		t.Fatalf("inserted = %d", ack.Inserted)
	}
	var edge struct {
		Weight int64 `json:"weight"`
	}
	getJSON(t, ts.URL+"/edge?src=a&dst=b", &edge)
	if edge.Weight != 4 {
		t.Fatalf("batched weight = %d, want 4", edge.Weight)
	}
}

func TestNeighborsAndNodeOutAndReachable(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/insert",
		`[{"src":"a","dst":"b","weight":1},{"src":"a","dst":"c","weight":2},{"src":"c","dst":"d","weight":4}]`).Body.Close()

	var succ struct {
		Nodes []string `json:"nodes"`
	}
	getJSON(t, ts.URL+"/successors?v=a", &succ)
	if len(succ.Nodes) != 2 {
		t.Fatalf("successors = %v", succ.Nodes)
	}
	var prec struct {
		Nodes []string `json:"nodes"`
	}
	getJSON(t, ts.URL+"/precursors?v=d", &prec)
	if len(prec.Nodes) != 1 || prec.Nodes[0] != "c" {
		t.Fatalf("precursors = %v", prec.Nodes)
	}
	var out struct {
		Out int64 `json:"out"`
	}
	getJSON(t, ts.URL+"/nodeout?v=a", &out)
	if out.Out != 3 {
		t.Fatalf("nodeout = %d", out.Out)
	}
	var reach struct {
		Reachable bool `json:"reachable"`
	}
	getJSON(t, ts.URL+"/reachable?src=a&dst=d", &reach)
	if !reach.Reachable {
		t.Fatal("a->d should be reachable")
	}
	getJSON(t, ts.URL+"/reachable?src=d&dst=a", &reach)
	if reach.Reachable {
		t.Fatal("d->a should be unreachable")
	}
	// Unknown node: empty list, not an error.
	getJSON(t, ts.URL+"/successors?v=ghost", &succ)
	if len(succ.Nodes) != 0 {
		t.Fatalf("ghost successors = %v", succ.Nodes)
	}
}

func TestHeavyEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/insert",
		`[{"src":"big","dst":"flow","weight":500},{"src":"small","dst":"flow","weight":2}]`).Body.Close()
	var heavy []struct {
		Srcs   []string `json:"srcs"`
		Weight int64    `json:"weight"`
	}
	getJSON(t, ts.URL+"/heavy?min=100", &heavy)
	if len(heavy) != 1 || heavy[0].Weight != 500 || heavy[0].Srcs[0] != "big" {
		t.Fatalf("heavy = %+v", heavy)
	}
}

func TestStats(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/insert", `{"src":"a","dst":"b","weight":1}`).Body.Close()
	var st gss.Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Items != 1 || st.MatrixEdges != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSnapshotRestoreCycle(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/insert", `{"src":"a","dst":"b","weight":9}`).Body.Close()

	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}

	// Restore into a second server.
	_, ts2 := newTestServer(t)
	resp2, err := http.Post(ts2.URL+"/restore", "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d", resp2.StatusCode)
	}
	var edge struct {
		Weight int64 `json:"weight"`
		Found  bool  `json:"found"`
	}
	getJSON(t, ts2.URL+"/edge?src=a&dst=b", &edge)
	if !edge.Found || edge.Weight != 9 {
		t.Fatalf("restored edge = %+v", edge)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		method, path, body string
	}{
		{"GET", "/insert", ""},
		{"POST", "/insert", `{"dst":"b"}`},
		{"POST", "/insert", `not json`},
		{"GET", "/edge?src=a", ""},
		{"GET", "/successors", ""},
		{"GET", "/nodeout", ""},
		{"GET", "/reachable?src=a", ""},
		{"GET", "/heavy?min=0", ""},
		{"GET", "/heavy?min=abc", ""},
		{"POST", "/restore", "garbage"},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s %s accepted", c.method, c.path)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				body := fmt.Sprintf(`{"src":"s%d","dst":"d%d","weight":1}`, w, i)
				resp, err := http.Post(ts.URL+"/insert", "application/json", strings.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
				resp2, err := http.Get(ts.URL + fmt.Sprintf("/edge?src=s%d&dst=d%d", w, i))
				if err == nil {
					resp2.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	var st gss.Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Items != 200 {
		t.Fatalf("items = %d, want 200", st.Items)
	}
}

// TestHealthz: liveness endpoint reports role, backend and uptime —
// the cluster router's prober parses exactly these fields.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var hz Healthz
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" || hz.Role != "primary" {
		t.Fatalf("healthz = %+v, want status ok role primary", hz)
	}
	if hz.Backend == "" {
		t.Fatalf("healthz missing backend name: %+v", hz)
	}
	if hz.UptimeSeconds < 0 {
		t.Fatalf("negative uptime: %+v", hz)
	}
}

// TestNodeIn: the in-aggregate endpoint, symmetric to /nodeout.
func TestNodeIn(t *testing.T) {
	_, ts := newTestServer(t)
	resp := post(t, ts.URL+"/insert",
		`[{"src":"a","dst":"hub","weight":3},{"src":"b","dst":"hub","weight":4},{"src":"hub","dst":"c","weight":9}]`)
	resp.Body.Close()
	var in struct {
		V  string `json:"v"`
		In int64  `json:"in"`
	}
	getJSON(t, ts.URL+"/nodein?v=hub", &in)
	if in.In != 7 {
		t.Fatalf("nodein(hub) = %d, want 7", in.In)
	}
	r, err := http.Get(ts.URL + "/nodein")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing v: status %d, want 400", r.StatusCode)
	}
}
