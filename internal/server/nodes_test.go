package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"testing"
)

// nodesResponse mirrors the /nodes payload.
type nodesResponse struct {
	Nodes     []string `json:"nodes"`
	Total     int      `json:"total"`
	Truncated bool     `json:"truncated"`
}

func TestNodesLimit(t *testing.T) {
	for _, backend := range []string{"single", "concurrent", "sharded", "windowed"} {
		t.Run(backend, func(t *testing.T) {
			_, ts := newIngestServer(t, Options{Backend: backend})
			var lines []string
			for i := 0; i < 20; i++ {
				lines = append(lines, fmt.Sprintf(`{"src":"s%02d","dst":"d%02d"}`, i, i))
			}
			post(t, ts.URL+"/ingest", strings.Join(lines, "\n")).Body.Close()

			var full nodesResponse
			getJSON(t, ts.URL+"/nodes", &full)
			if len(full.Nodes) != 40 || full.Total != 40 || full.Truncated {
				t.Fatalf("full = %d nodes, total %d, truncated %v",
					len(full.Nodes), full.Total, full.Truncated)
			}
			if !sort.StringsAreSorted(full.Nodes) {
				t.Fatal("full node set is not sorted")
			}

			var page nodesResponse
			getJSON(t, ts.URL+"/nodes?limit=7", &page)
			if len(page.Nodes) != 7 || page.Total != 40 || !page.Truncated {
				t.Fatalf("page = %d nodes, total %d, truncated %v",
					len(page.Nodes), page.Total, page.Truncated)
			}
			if !sort.StringsAreSorted(page.Nodes) {
				t.Fatal("page is not sorted")
			}
			// Every page entry must be a real node.
			all := map[string]bool{}
			for _, v := range full.Nodes {
				all[v] = true
			}
			for _, v := range page.Nodes {
				if !all[v] {
					t.Fatalf("page contains unknown node %q", v)
				}
			}

			// limit=0 means unlimited.
			var unlimited nodesResponse
			getJSON(t, ts.URL+"/nodes?limit=0", &unlimited)
			if len(unlimited.Nodes) != 40 || unlimited.Truncated {
				t.Fatalf("limit=0 = %d nodes, truncated %v", len(unlimited.Nodes), unlimited.Truncated)
			}
		})
	}
}

func TestNodesBadLimit(t *testing.T) {
	_, ts := newIngestServer(t, Options{})
	for _, raw := range []string{"-1", "x", "1.5"} {
		resp, err := http.Get(ts.URL + "/nodes?limit=" + raw)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("limit=%s: status %d, want 400", raw, resp.StatusCode)
		}
	}
}
