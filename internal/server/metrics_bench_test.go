package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/gss"
	"repro/internal/stream"
)

// Prices the telemetry middleware where it matters: the bulk-ingest
// hot path. One /ingest request carries a whole NDJSON batch, so the
// per-request middleware cost (status wrapper, request ID, atomics,
// histogram) amortizes over hundreds of decoded items — the bare
// sub-benchmark routes the same handler without Wrap so the delta is
// the middleware alone. Budget: the wrapped path must stay within 2%
// of bare ingest throughput; run both and compare ns/op.
//
//	go test ./internal/server -bench IngestMiddleware -benchmem
func BenchmarkIngestMiddlewareOverhead(b *testing.B) {
	const itemsPerReq = 500
	items := make([]stream.Item, itemsPerReq)
	for i := range items {
		items[i] = stream.Item{Src: fmt.Sprintf("s%d", i%97),
			Dst: fmt.Sprintf("d%d", i%89), Weight: 1}
	}
	var body bytes.Buffer
	if err := stream.EncodeNDJSON(&body, items); err != nil {
		b.Fatal(err)
	}
	payload := body.Bytes()

	run := func(b *testing.B, wrap bool) {
		srv, err := NewWithOptions(
			gss.Config{Width: 256, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8},
			Options{Backend: "concurrent", BatchSize: 500})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		var h http.Handler = http.HandlerFunc(srv.handleIngest)
		if wrap {
			h = srv.met.http.Wrap("/ingest", srv.handleIngest)
		}
		ts := httptest.NewServer(h)
		defer ts.Close()
		client := ts.Client()

		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req, err := http.NewRequest(http.MethodPost, ts.URL, bytes.NewReader(payload))
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/x-ndjson")
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, false) })
	b.Run("wrapped", func(b *testing.B) { run(b, true) })
}
