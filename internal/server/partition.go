package server

import (
	"bytes"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/gss"
	"repro/internal/hashing"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Partition export/drop: the server side of live migration. The
// cluster router names the membership change as two URL lists —
// ?old=a,b,c&new=a,b,c,d — and the server evaluates the same
// rendezvous function the router's ring uses (hashing.Rendezvous over
// Hash64 of the normalized member URLs), so "which keys move" is one
// pure function both sides compute identically, with no coordination
// and no key list on the wire.
//
//	GET  /partition/export?old=...&new=...  moving edges as a GSS1 item
//	     stream; X-Log-Seq fences the body against the operation log
//	POST /partition/drop?old=...&new=...&items=N  drop the moved edges
//	     and subtract N ingested items (the count the new owner
//	     absorbed, which the router tracked)
//	POST /partition/absorb?items=N  add N to the item counter — the
//	     drain-mode rebase of the aggregation delta onto a surviving
//	     member (exported edges under-count the items they aggregate)

// partitionSeeds parses a comma-separated member-URL list into
// rendezvous seeds, normalizing each URL the way the cluster ring does
// (trimmed whitespace, no trailing slash).
func partitionSeeds(csv string) ([]uint64, error) {
	parts := strings.Split(csv, ",")
	seeds := make([]uint64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			return nil, errors.New("empty member URL in list")
		}
		seeds = append(seeds, hashing.Hash64(p))
	}
	return seeds, nil
}

// movingPredicate builds the moving-key predicate from the request's
// old/new member lists: a key moves when the two rings elect different
// owners. Winners are compared by seed value, not list index, so the
// two lists may order their common members differently.
func movingPredicate(r *http.Request) (func(id string) bool, error) {
	oldSeeds, err := partitionSeeds(r.URL.Query().Get("old"))
	if err != nil {
		return nil, errors.New("old must be a comma-separated member-URL list: " + err.Error())
	}
	newSeeds, err := partitionSeeds(r.URL.Query().Get("new"))
	if err != nil {
		return nil, errors.New("new must be a comma-separated member-URL list: " + err.Error())
	}
	return func(id string) bool {
		kh := hashing.Hash64(id)
		return oldSeeds[hashing.Rendezvous(oldSeeds, kh)] !=
			newSeeds[hashing.Rendezvous(newSeeds, kh)]
	}, nil
}

// partitionUnsupported maps the backends' capability errors to 501.
func partitionUnsupported(err error) bool {
	return errors.Is(err, gss.ErrNoNodeIndex) || errors.Is(err, sketch.ErrNoPartitionSupport)
}

// handlePartitionExport (GET /partition/export?old=&new=) streams the
// moving sketch edges as a GSS1 item stream. Like /snapshot, the body
// is buffered under the apply barrier on a logging primary, so the
// X-Log-Seq header names exactly the log offset this body covers: the
// migrator copies the body, then tails /log?from=X-Log-Seq to close
// the gap — no write is in both. X-Partition-Edges and
// X-Partition-Mixed carry the export report.
func (s *Server) handlePartitionExport(w http.ResponseWriter, r *http.Request) {
	pm, ok := sketch.PartitionView(s.sk)
	if !ok {
		httpError(w, http.StatusNotImplemented, "backend has no partition surface")
		return
	}
	moving, err := movingPredicate(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var buf bytes.Buffer
	sw := stream.NewWriter(&buf)
	var seq uint64
	var fencedItems int64
	var rep gss.PartitionReport
	if s.olog != nil {
		s.applyMu.Lock()
		seq = s.olog.NextSeq()
		fencedItems = s.sk.Stats().Items
		rep, err = pm.ExportPartition(moving, sw.WriteItem)
		s.applyMu.Unlock()
	} else {
		fencedItems = s.sk.Stats().Items
		rep, err = pm.ExportPartition(moving, sw.WriteItem)
	}
	if err == nil {
		err = sw.Flush()
	}
	if err != nil {
		if partitionUnsupported(err) {
			httpError(w, http.StatusNotImplemented, "partition export: %v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "partition export: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	if s.olog != nil {
		w.Header().Set("X-Log-Seq", strconv.FormatUint(seq, 10))
	}
	w.Header().Set("X-Partition-Edges", strconv.FormatInt(rep.Edges, 10))
	w.Header().Set("X-Partition-Mixed", strconv.FormatInt(rep.Mixed, 10))
	// The sketch's whole item count at the fence. When the export covers
	// the member's entire key set (a drain), this is exactly the moving
	// item count, and the migrator rebases (items − edges) onto a gainer
	// after cutover so aggregation does not deflate the cluster total.
	w.Header().Set("X-Partition-Items", strconv.FormatInt(fencedItems, 10))
	_, _ = w.Write(buf.Bytes())
}

// handlePartitionDrop (POST /partition/drop?old=&new=&items=N) removes
// the moved edges after the new owner absorbed them. It mirrors
// /restore's durability discipline: the sketch changes wholesale, so
// on a logging primary the log is rotated and retired under the apply
// barrier (replay must not resurrect moved edges; tailing followers
// get 410 and re-snapshot) and a checkpoint is forced.
func (s *Server) handlePartitionDrop(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	pm, ok := sketch.PartitionView(s.sk)
	if !ok {
		httpError(w, http.StatusNotImplemented, "backend has no partition surface")
		return
	}
	moving, err := movingPredicate(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var items int64
	if raw := r.URL.Query().Get("items"); raw != "" {
		items, err = strconv.ParseInt(raw, 10, 64)
		if err != nil || items < 0 {
			httpError(w, http.StatusBadRequest, "items must be a non-negative integer")
			return
		}
	}
	var rep gss.PartitionReport
	if s.olog != nil {
		s.applyMu.Lock()
		s.restoreMu.Lock()
		rep, err = pm.DropPartition(moving, items)
		if err == nil {
			if rerr := s.olog.Rotate(); rerr != nil {
				s.opt.Logf("server: rotating oplog after partition drop: %v", rerr)
			}
			s.olog.Retain(s.olog.NextSeq())
		}
		s.restoreMu.Unlock()
		s.applyMu.Unlock()
		if err == nil && s.ckpt != nil {
			if _, cerr := s.ckpt.CheckpointNow(); cerr != nil {
				s.opt.Logf("server: checkpoint after partition drop: %v", cerr)
			}
		}
	} else {
		s.restoreMu.Lock()
		rep, err = pm.DropPartition(moving, items)
		s.restoreMu.Unlock()
	}
	if err != nil {
		if partitionUnsupported(err) {
			httpError(w, http.StatusNotImplemented, "partition drop: %v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "partition drop: %v", err)
		return
	}
	writeJSON(w, map[string]interface{}{
		"status": "dropped",
		"edges":  rep.Edges,
		"items":  rep.Items,
		"mixed":  rep.Mixed,
	})
}

// handlePartitionAbsorb (POST /partition/absorb?items=N) adds N to the
// stream-item counter. The absorb is not an operation-log entry (it
// carries no edges, and followers converge through snapshots), so on a
// checkpointing primary a checkpoint is forced to make it survive a
// restart.
func (s *Server) handlePartitionAbsorb(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	pm, ok := sketch.PartitionView(s.sk)
	if !ok {
		httpError(w, http.StatusNotImplemented, "backend has no partition surface")
		return
	}
	items, err := strconv.ParseInt(r.URL.Query().Get("items"), 10, 64)
	if err != nil || items < 0 {
		httpError(w, http.StatusBadRequest, "items must be a non-negative integer")
		return
	}
	if s.olog != nil {
		s.applyMu.Lock()
		err = pm.AbsorbItems(items)
		s.applyMu.Unlock()
		if err == nil && s.ckpt != nil {
			if _, cerr := s.ckpt.CheckpointNow(); cerr != nil {
				s.opt.Logf("server: checkpoint after partition absorb: %v", cerr)
			}
		}
	} else {
		err = pm.AbsorbItems(items)
	}
	if err != nil {
		if partitionUnsupported(err) {
			httpError(w, http.StatusNotImplemented, "partition absorb: %v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "partition absorb: %v", err)
		return
	}
	writeJSON(w, map[string]interface{}{"status": "absorbed", "items": items})
}
