package cluster

import (
	"context"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/gss"
)

// Read routing. Partitioning by source node makes three queries local
// to one member — /edge, /successors and /nodeout only look at edges
// leaving one node, and all of those live on the node's owner — so the
// router proxies them straight through. Everything else aggregates
// state that is spread across members and is scatter-gathered:
// /precursors and /nodein (edges INTO a node come from sources owned
// anywhere), /nodes (a node is registered wherever it appears as either
// endpoint), /heavy, /stats, and /reachable (a path hops across
// partitions, so the BFS frontier fans out per round).
//
// Every read runs under the deadline/retry/partial discipline in
// read.go: readCtx bounds the whole fan-out, memberGet retries
// idempotent GETs, and scatter-gathered handlers resolve per-member
// errors through settleScatter — all-or-nothing by default, surviving
// members' merge with partial markers under ?partial=1.

// proxyByKey proxies a single-member query to the owner of the named
// query parameter, passing the member's status and body through
// unchanged. A single-member read has no partial merge — ?partial=1 is
// validated for consistency but changes nothing; the owner either
// answers or the query fails.
func (rt *Router) proxyByKey(param string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get(param)
		if key == "" {
			httpError(w, http.StatusBadRequest, "%s is required", param)
			return
		}
		ctx, cancel, ok := rt.readCtx(w, r)
		if !ok {
			return
		}
		defer cancel()
		if _, ok := rt.partialMode(w, r); !ok {
			return
		}
		pathQuery := r.URL.Path
		if r.URL.RawQuery != "" {
			pathQuery += "?" + r.URL.RawQuery
		}
		m := rt.owner(key)
		resp, err := rt.memberGet(ctx, m, pathQuery)
		if err != nil {
			httpError(w, http.StatusBadGateway, "cluster: %v", err)
			return
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		if _, err := io.Copy(w, resp.Body); err != nil {
			// The status line and part of the body are already on the
			// wire, so the client sees a truncated 200 — count and log it
			// rather than fail silently.
			m.copyFails.Add(1)
			rt.cfg.Logf("cluster: %s proxy to %s failed mid-body: %v", r.URL.Path, m.primary, err)
		}
	}
}

// handlePrecursors unions the per-member precursor sets. Each member
// holds the edges whose sources it owns, so the sets are disjoint per
// edge but may repeat nodes; the union dedups and re-sorts into the
// single-node order.
func (rt *Router) handlePrecursors(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query().Get("v")
	if v == "" {
		httpError(w, http.StatusBadRequest, "v is required")
		return
	}
	ctx, cancel, ok := rt.readCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	partial, ok := rt.partialMode(w, r)
	if !ok {
		return
	}
	var mu sync.Mutex
	set := make(map[string]bool)
	members := rt.topology().members
	errs := rt.scatter(members, func(i int, m *member) error {
		var page struct {
			Nodes []string `json:"nodes"`
		}
		if err := rt.memberGetJSON(ctx, m, "/precursors?v="+queryEscape(v), &page); err != nil {
			return err
		}
		mu.Lock()
		for _, u := range page.Nodes {
			set[u] = true
		}
		mu.Unlock()
		return nil
	})
	missing, err := rt.settleScatter(members, errs, partial)
	if err != nil {
		httpError(w, http.StatusBadGateway, "cluster: %v", err)
		return
	}
	nodes := make([]string, 0, len(set))
	for u := range set {
		nodes = append(nodes, u)
	}
	sort.Strings(nodes)
	res := map[string]interface{}{"v": v, "nodes": nodes}
	if partial {
		markPartial(w, res, missing)
	}
	writeJSON(w, res)
}

// handleNodeIn sums the per-member in-aggregates. An edge (u,v) lives
// on exactly one member — u's owner — so the per-member sums partition
// v's incoming weight and plain addition is exact.
func (rt *Router) handleNodeIn(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query().Get("v")
	if v == "" {
		httpError(w, http.StatusBadRequest, "v is required")
		return
	}
	ctx, cancel, ok := rt.readCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	partial, ok := rt.partialMode(w, r)
	if !ok {
		return
	}
	var mu sync.Mutex
	var total int64
	members := rt.topology().members
	errs := rt.scatter(members, func(i int, m *member) error {
		var res struct {
			In int64 `json:"in"`
		}
		if err := rt.memberGetJSON(ctx, m, "/nodein?v="+queryEscape(v), &res); err != nil {
			return err
		}
		mu.Lock()
		total += res.In
		mu.Unlock()
		return nil
	})
	missing, err := rt.settleScatter(members, errs, partial)
	if err != nil {
		httpError(w, http.StatusBadGateway, "cluster: %v", err)
		return
	}
	res := map[string]interface{}{"v": v, "in": total}
	if partial {
		markPartial(w, res, missing)
	}
	writeJSON(w, res)
}

// defaultNodesLimit mirrors internal/server's /nodes cap.
const defaultNodesLimit = 10000

// handleNodes unions the member node sets. A node registers on every
// member that saw it as either endpoint, so computing the exact global
// total needs the full set from each member (limit=0 fan-out) before
// the limit is applied to the deduplicated union — cluster /nodes costs
// a full per-member enumeration even when the response page is small.
func (rt *Router) handleNodes(w http.ResponseWriter, r *http.Request) {
	limit := defaultNodesLimit
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "limit must be a non-negative integer (0 = unlimited)")
			return
		}
		limit = n
	}
	ctx, cancel, ok := rt.readCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	partial, ok := rt.partialMode(w, r)
	if !ok {
		return
	}
	var mu sync.Mutex
	set := make(map[string]bool)
	members := rt.topology().members
	errs := rt.scatter(members, func(i int, m *member) error {
		var page struct {
			Nodes []string `json:"nodes"`
		}
		if err := rt.memberGetJSON(ctx, m, "/nodes?limit=0", &page); err != nil {
			return err
		}
		mu.Lock()
		for _, u := range page.Nodes {
			set[u] = true
		}
		mu.Unlock()
		return nil
	})
	missing, err := rt.settleScatter(members, errs, partial)
	if err != nil {
		httpError(w, http.StatusBadGateway, "cluster: %v", err)
		return
	}
	nodes := make([]string, 0, len(set))
	for u := range set {
		nodes = append(nodes, u)
	}
	sort.Strings(nodes)
	total := len(nodes)
	if limit > 0 && total > limit {
		nodes = nodes[:limit]
	}
	res := map[string]interface{}{
		"nodes":     nodes,
		"total":     total,
		"truncated": len(nodes) < total,
	}
	if partial {
		markPartial(w, res, missing)
	}
	writeJSON(w, res)
}

// handleStats merges the member sketches' statistics field-wise, the
// same convention the sharded backend uses to aggregate its shards:
// configuration fields come from the first answering member, counters
// add, and the derived buffer ratio is recomputed over the sums. In
// partial mode the merge covers the surviving members only; the wire
// shape grows partial/missing_members fields next to the flattened
// gss.Stats.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, ok := rt.readCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	partial, ok := rt.partialMode(w, r)
	if !ok {
		return
	}
	members := rt.topology().members
	stats := make([]gss.Stats, len(members))
	errs := rt.scatter(members, func(i int, m *member) error {
		return rt.memberGetJSON(ctx, m, "/stats", &stats[i])
	})
	missing, err := rt.settleScatter(members, errs, partial)
	if err != nil {
		httpError(w, http.StatusBadGateway, "cluster: %v", err)
		return
	}
	var agg gss.Stats
	first := true
	for i, st := range stats {
		if errs[i] != nil {
			continue
		}
		if first {
			agg, first = st, false
			continue
		}
		agg.Items += st.Items
		agg.MatrixEdges += st.MatrixEdges
		agg.BufferEdges += st.BufferEdges
		agg.MatrixBytes += st.MatrixBytes
		agg.IndexedNodes += st.IndexedNodes
		agg.ReverseIndexBytes += st.ReverseIndexBytes
		agg.LiveGenerations += st.LiveGenerations
		agg.ExpiredGenerations += st.ExpiredGenerations
		agg.ExpiredItems += st.ExpiredItems
		agg.DroppedStragglers += st.DroppedStragglers
	}
	if total := agg.MatrixEdges + agg.BufferEdges; total > 0 {
		agg.BufferPct = float64(agg.BufferEdges) / float64(total)
	}
	if !partial {
		writeJSON(w, agg)
		return
	}
	markPartial(w, nil, missing)
	writeJSON(w, struct {
		gss.Stats
		Partial        bool     `json:"partial"`
		MissingMembers []string `json:"missing_members,omitempty"`
	}{agg, len(missing) > 0, missing})
}

// heavyEdge is the /heavy wire shape (internal/server's edge type).
type heavyEdge struct {
	Srcs   []string `json:"srcs"`
	Dsts   []string `json:"dsts"`
	Weight int64    `json:"weight"`
}

// handleHeavy concatenates the member heavy-edge lists — an original
// edge lives in exactly one member, so concatenation never
// double-counts — and re-sorts by weight (descending) with the string
// endpoints as the tiebreak, since endpoint hashes do not cross the
// wire. The payload is a JSON array, so partial-mode markers ride the
// X-Gss-Partial / X-Gss-Missing-Members headers alone.
func (rt *Router) handleHeavy(w http.ResponseWriter, r *http.Request) {
	min, err := strconv.ParseInt(r.URL.Query().Get("min"), 10, 64)
	if err != nil || min <= 0 {
		httpError(w, http.StatusBadRequest, "positive integer min is required")
		return
	}
	ctx, cancel, ok := rt.readCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	partial, ok := rt.partialMode(w, r)
	if !ok {
		return
	}
	var mu sync.Mutex
	merged := make([]heavyEdge, 0)
	members := rt.topology().members
	errs := rt.scatter(members, func(i int, m *member) error {
		var page []heavyEdge
		if err := rt.memberGetJSON(ctx, m, "/heavy?min="+strconv.FormatInt(min, 10), &page); err != nil {
			return err
		}
		mu.Lock()
		merged = append(merged, page...)
		mu.Unlock()
		return nil
	})
	missing, err := rt.settleScatter(members, errs, partial)
	if err != nil {
		httpError(w, http.StatusBadGateway, "cluster: %v", err)
		return
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Weight != merged[j].Weight {
			return merged[i].Weight > merged[j].Weight
		}
		si, sj := strings.Join(merged[i].Srcs, ","), strings.Join(merged[j].Srcs, ",")
		if si != sj {
			return si < sj
		}
		return strings.Join(merged[i].Dsts, ",") < strings.Join(merged[j].Dsts, ",")
	})
	if partial {
		markPartial(w, nil, missing)
	}
	writeJSON(w, merged)
}

// reachableFanout bounds how many successor queries one BFS round
// issues concurrently.
const reachableFanout = 16

// handleReachable runs the multi-round frontier fan-out: each BFS round
// groups the frontier by owner — every node's successor set lives
// wholly on its owner — queries the members in parallel, and the
// answers form the next frontier. Like the single-node query, "false"
// is certain while "true" may be a sketch false positive. In partial
// mode an unreachable owner's successor sets are treated as empty and
// the response carries "certain": a negative answer explored through
// missing members may have missed a real path, so it reports
// "certain": false.
func (rt *Router) handleReachable(w http.ResponseWriter, r *http.Request) {
	src, dst := r.URL.Query().Get("src"), r.URL.Query().Get("dst")
	if src == "" || dst == "" {
		httpError(w, http.StatusBadRequest, "src and dst are required")
		return
	}
	ctx, cancel, ok := rt.readCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	partial, ok := rt.partialMode(w, r)
	if !ok {
		return
	}
	found, missing, err := rt.reachable(ctx, src, dst, partial)
	if err != nil {
		httpError(w, http.StatusBadGateway, "cluster: %v", err)
		return
	}
	res := map[string]interface{}{"src": src, "dst": dst, "reachable": found}
	if partial {
		res["certain"] = found || len(missing) == 0
		markPartial(w, res, missing)
		if len(missing) > 0 {
			rt.met.partialReads.Inc()
			for _, p := range missing {
				if m := rt.lookupMember(p); m != nil {
					m.degradedReads.Add(1)
				}
			}
		}
	}
	writeJSON(w, res)
}

// reachable runs the BFS. In partial mode, member failures shrink the
// explored frontier instead of failing the query; the sorted primaries
// of the members whose successor sets went missing come back alongside
// the verdict. The missing list is best-effort on an early "true" exit:
// a found path is a definite answer, so exploration stops there.
func (rt *Router) reachable(ctx context.Context, src, dst string, partial bool) (bool, []string, error) {
	if src == dst {
		return true, nil, nil
	}
	visited := map[string]bool{src: true}
	frontier := []string{src}
	missing := make(map[string]bool)
	for len(frontier) > 0 {
		succs, miss, err := rt.successorsOf(ctx, frontier, partial)
		if err != nil {
			return false, nil, err
		}
		for _, p := range miss {
			missing[p] = true
		}
		var next []string
		for _, u := range succs {
			if u == dst {
				return true, sortedKeys(missing), nil
			}
			if !visited[u] {
				visited[u] = true
				next = append(next, u)
			}
		}
		frontier = next
	}
	return false, sortedKeys(missing), nil
}

// successorsOf fans /successors queries for the frontier nodes across
// their owners with bounded concurrency and returns the concatenated
// successor lists (duplicates included; the BFS dedups via visited).
// In partial mode a failed owner contributes an empty set and its
// primary URL lands in the missing list — unless the failure is the
// request's own context dying (deadline or cancellation), which fails
// the query in either mode.
func (rt *Router) successorsOf(ctx context.Context, frontier []string, partial bool) ([]string, []string, error) {
	results := make([][]string, len(frontier))
	owners := make([]*member, len(frontier))
	errs := make([]error, len(frontier))
	sem := make(chan struct{}, reachableFanout)
	var wg sync.WaitGroup
	for i, v := range frontier {
		wg.Add(1)
		go func(i int, v string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				errs[i] = ctx.Err()
				return
			}
			var page struct {
				Nodes []string `json:"nodes"`
			}
			owners[i] = rt.owner(v)
			errs[i] = rt.memberGetJSON(ctx, owners[i], "/successors?v="+queryEscape(v), &page)
			results[i] = page.Nodes
		}(i, v)
	}
	wg.Wait()
	var out []string
	missing := make(map[string]bool)
	for i := range frontier {
		if errs[i] == nil {
			out = append(out, results[i]...)
			continue
		}
		if !partial || ctx.Err() != nil {
			return nil, nil, errs[i]
		}
		missing[owners[i].primary] = true
	}
	return out, sortedKeys(missing), nil
}

// sortedKeys flattens a string set into a sorted slice, nil when empty.
func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
