package cluster

import (
	"context"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/gss"
)

// Read routing. Partitioning by source node makes three queries local
// to one member — /edge, /successors and /nodeout only look at edges
// leaving one node, and all of those live on the node's owner — so the
// router proxies them straight through. Everything else aggregates
// state that is spread across members and is scatter-gathered:
// /precursors and /nodein (edges INTO a node come from sources owned
// anywhere), /nodes (a node is registered wherever it appears as either
// endpoint), /heavy, /stats, and /reachable (a path hops across
// partitions, so the BFS frontier fans out per round).

// proxyByKey proxies a single-member query to the owner of the named
// query parameter, passing the member's status and body through
// unchanged.
func (rt *Router) proxyByKey(param string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get(param)
		if key == "" {
			httpError(w, http.StatusBadRequest, "%s is required", param)
			return
		}
		ctx, cancel := rt.reqCtx(r)
		defer cancel()
		pathQuery := r.URL.Path
		if r.URL.RawQuery != "" {
			pathQuery += "?" + r.URL.RawQuery
		}
		resp, err := rt.memberGet(ctx, rt.owner(key), pathQuery)
		if err != nil {
			httpError(w, http.StatusBadGateway, "cluster: %v", err)
			return
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}
}

// handlePrecursors unions the per-member precursor sets. Each member
// holds the edges whose sources it owns, so the sets are disjoint per
// edge but may repeat nodes; the union dedups and re-sorts into the
// single-node order.
func (rt *Router) handlePrecursors(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query().Get("v")
	if v == "" {
		httpError(w, http.StatusBadRequest, "v is required")
		return
	}
	ctx, cancel := rt.reqCtx(r)
	defer cancel()
	var mu sync.Mutex
	set := make(map[string]bool)
	err := rt.scatter(rt.topology().members, func(i int, m *member) error {
		var page struct {
			Nodes []string `json:"nodes"`
		}
		if err := rt.memberGetJSON(ctx, m, "/precursors?v="+queryEscape(v), &page); err != nil {
			return err
		}
		mu.Lock()
		for _, u := range page.Nodes {
			set[u] = true
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		httpError(w, http.StatusBadGateway, "cluster: %v", err)
		return
	}
	nodes := make([]string, 0, len(set))
	for u := range set {
		nodes = append(nodes, u)
	}
	sort.Strings(nodes)
	writeJSON(w, map[string]interface{}{"v": v, "nodes": nodes})
}

// handleNodeIn sums the per-member in-aggregates. An edge (u,v) lives
// on exactly one member — u's owner — so the per-member sums partition
// v's incoming weight and plain addition is exact.
func (rt *Router) handleNodeIn(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query().Get("v")
	if v == "" {
		httpError(w, http.StatusBadRequest, "v is required")
		return
	}
	ctx, cancel := rt.reqCtx(r)
	defer cancel()
	var mu sync.Mutex
	var total int64
	err := rt.scatter(rt.topology().members, func(i int, m *member) error {
		var res struct {
			In int64 `json:"in"`
		}
		if err := rt.memberGetJSON(ctx, m, "/nodein?v="+queryEscape(v), &res); err != nil {
			return err
		}
		mu.Lock()
		total += res.In
		mu.Unlock()
		return nil
	})
	if err != nil {
		httpError(w, http.StatusBadGateway, "cluster: %v", err)
		return
	}
	writeJSON(w, map[string]interface{}{"v": v, "in": total})
}

// defaultNodesLimit mirrors internal/server's /nodes cap.
const defaultNodesLimit = 10000

// handleNodes unions the member node sets. A node registers on every
// member that saw it as either endpoint, so computing the exact global
// total needs the full set from each member (limit=0 fan-out) before
// the limit is applied to the deduplicated union — cluster /nodes costs
// a full per-member enumeration even when the response page is small.
func (rt *Router) handleNodes(w http.ResponseWriter, r *http.Request) {
	limit := defaultNodesLimit
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "limit must be a non-negative integer (0 = unlimited)")
			return
		}
		limit = n
	}
	ctx, cancel := rt.reqCtx(r)
	defer cancel()
	var mu sync.Mutex
	set := make(map[string]bool)
	err := rt.scatter(rt.topology().members, func(i int, m *member) error {
		var page struct {
			Nodes []string `json:"nodes"`
		}
		if err := rt.memberGetJSON(ctx, m, "/nodes?limit=0", &page); err != nil {
			return err
		}
		mu.Lock()
		for _, u := range page.Nodes {
			set[u] = true
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		httpError(w, http.StatusBadGateway, "cluster: %v", err)
		return
	}
	nodes := make([]string, 0, len(set))
	for u := range set {
		nodes = append(nodes, u)
	}
	sort.Strings(nodes)
	total := len(nodes)
	if limit > 0 && total > limit {
		nodes = nodes[:limit]
	}
	writeJSON(w, map[string]interface{}{
		"nodes":     nodes,
		"total":     total,
		"truncated": len(nodes) < total,
	})
}

// handleStats merges the member sketches' statistics field-wise, the
// same convention the sharded backend uses to aggregate its shards:
// configuration fields come from member 0, counters add, and the
// derived buffer ratio is recomputed over the sums.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := rt.reqCtx(r)
	defer cancel()
	members := rt.topology().members
	stats := make([]gss.Stats, len(members))
	err := rt.scatter(members, func(i int, m *member) error {
		return rt.memberGetJSON(ctx, m, "/stats", &stats[i])
	})
	if err != nil {
		httpError(w, http.StatusBadGateway, "cluster: %v", err)
		return
	}
	agg := stats[0]
	for _, st := range stats[1:] {
		agg.Items += st.Items
		agg.MatrixEdges += st.MatrixEdges
		agg.BufferEdges += st.BufferEdges
		agg.MatrixBytes += st.MatrixBytes
		agg.IndexedNodes += st.IndexedNodes
		agg.ReverseIndexBytes += st.ReverseIndexBytes
		agg.LiveGenerations += st.LiveGenerations
		agg.ExpiredGenerations += st.ExpiredGenerations
		agg.ExpiredItems += st.ExpiredItems
		agg.DroppedStragglers += st.DroppedStragglers
	}
	if total := agg.MatrixEdges + agg.BufferEdges; total > 0 {
		agg.BufferPct = float64(agg.BufferEdges) / float64(total)
	}
	writeJSON(w, agg)
}

// heavyEdge is the /heavy wire shape (internal/server's edge type).
type heavyEdge struct {
	Srcs   []string `json:"srcs"`
	Dsts   []string `json:"dsts"`
	Weight int64    `json:"weight"`
}

// handleHeavy concatenates the member heavy-edge lists — an original
// edge lives in exactly one member, so concatenation never
// double-counts — and re-sorts by weight (descending) with the string
// endpoints as the tiebreak, since endpoint hashes do not cross the
// wire.
func (rt *Router) handleHeavy(w http.ResponseWriter, r *http.Request) {
	min, err := strconv.ParseInt(r.URL.Query().Get("min"), 10, 64)
	if err != nil || min <= 0 {
		httpError(w, http.StatusBadRequest, "positive integer min is required")
		return
	}
	ctx, cancel := rt.reqCtx(r)
	defer cancel()
	var mu sync.Mutex
	merged := make([]heavyEdge, 0)
	err = rt.scatter(rt.topology().members, func(i int, m *member) error {
		var page []heavyEdge
		if err := rt.memberGetJSON(ctx, m, "/heavy?min="+strconv.FormatInt(min, 10), &page); err != nil {
			return err
		}
		mu.Lock()
		merged = append(merged, page...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		httpError(w, http.StatusBadGateway, "cluster: %v", err)
		return
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Weight != merged[j].Weight {
			return merged[i].Weight > merged[j].Weight
		}
		si, sj := strings.Join(merged[i].Srcs, ","), strings.Join(merged[j].Srcs, ",")
		if si != sj {
			return si < sj
		}
		return strings.Join(merged[i].Dsts, ",") < strings.Join(merged[j].Dsts, ",")
	})
	writeJSON(w, merged)
}

// reachableFanout bounds how many successor queries one BFS round
// issues concurrently.
const reachableFanout = 16

// handleReachable runs the multi-round frontier fan-out: each BFS round
// groups the frontier by owner — every node's successor set lives
// wholly on its owner — queries the members in parallel, and the
// answers form the next frontier. Like the single-node query, "false"
// is certain while "true" may be a sketch false positive.
func (rt *Router) handleReachable(w http.ResponseWriter, r *http.Request) {
	src, dst := r.URL.Query().Get("src"), r.URL.Query().Get("dst")
	if src == "" || dst == "" {
		httpError(w, http.StatusBadRequest, "src and dst are required")
		return
	}
	ctx, cancel := rt.reqCtx(r)
	defer cancel()
	ok, err := rt.reachable(ctx, src, dst)
	if err != nil {
		httpError(w, http.StatusBadGateway, "cluster: %v", err)
		return
	}
	writeJSON(w, map[string]interface{}{"src": src, "dst": dst, "reachable": ok})
}

func (rt *Router) reachable(ctx context.Context, src, dst string) (bool, error) {
	if src == dst {
		return true, nil
	}
	visited := map[string]bool{src: true}
	frontier := []string{src}
	for len(frontier) > 0 {
		succs, err := rt.successorsOf(ctx, frontier)
		if err != nil {
			return false, err
		}
		var next []string
		for _, u := range succs {
			if u == dst {
				return true, nil
			}
			if !visited[u] {
				visited[u] = true
				next = append(next, u)
			}
		}
		frontier = next
	}
	return false, nil
}

// successorsOf fans /successors queries for the frontier nodes across
// their owners with bounded concurrency and returns the concatenated
// successor lists (duplicates included; the BFS dedups via visited).
func (rt *Router) successorsOf(ctx context.Context, frontier []string) ([]string, error) {
	results := make([][]string, len(frontier))
	errs := make([]error, len(frontier))
	sem := make(chan struct{}, reachableFanout)
	var wg sync.WaitGroup
	for i, v := range frontier {
		wg.Add(1)
		go func(i int, v string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				errs[i] = ctx.Err()
				return
			}
			var page struct {
				Nodes []string `json:"nodes"`
			}
			errs[i] = rt.memberGetJSON(ctx, rt.owner(v), "/successors?v="+queryEscape(v), &page)
			results[i] = page.Nodes
		}(i, v)
	}
	wg.Wait()
	var out []string
	for i := range frontier {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, results[i]...)
	}
	return out, nil
}
