package cluster

import (
	"math/rand"
	"net/http"
	"reflect"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/gss"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Cluster equivalence suite: the cross-backend conformance convention
// extended across the process boundary. One seeded random stream is
// replayed into a 3-member router and into a single-node oracle server,
// and every query observable is diffed — if the router's partitioning,
// proxying or scatter-gather merges lose or double-count anything, a
// diff here names the query that noticed.
//
// The sketch configuration is sized so the test stream summarizes
// exactly (no hash collisions at this scale, which the conformance
// battery already relies on): any surviving difference is a router bug,
// not sketch noise.

// equivStream is the seeded random stream both sides replay.
func equivStream(nodes, edges int, seed int64) []stream.Item {
	return stream.Generate(stream.DatasetConfig{Name: "cluster-equiv",
		Nodes: nodes, Edges: edges, DegreeSkew: 1.5, WeightSkew: 1.3,
		MaxWeight: 200, UniformMix: 0.3, Seed: seed})
}

// nodesOf collects the distinct endpoints of the stream.
func nodesOf(items []stream.Item) []string {
	set := make(map[string]bool)
	for _, it := range items {
		set[it.Src], set[it.Dst] = true, true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

type edgeAnswer struct {
	Weight int64 `json:"weight"`
	Found  bool  `json:"found"`
}

type nodesAnswer struct {
	Nodes []string `json:"nodes"`
	Total int      `json:"total"`
}

// diffLimits sizes one diff pass. Under -short the per-node and
// reachability checks sample instead of sweeping: a negative
// /reachable alone walks the whole graph through the router (one
// member round-trip per frontier node), and CI's -race -short pass
// must stay inside the repo's minute budget. The full suite keeps the
// exhaustive sweep.
type diffLimits struct {
	nodeSample  int // per-node observables checked (0 = every node)
	absentPairs int // random /edge probes beyond the stream's edges
	reachPairs  int // random + guaranteed-positive /reachable probes
}

func equivLimits() diffLimits {
	if testing.Short() {
		return diffLimits{nodeSample: 40, absentPairs: 60, reachPairs: 12}
	}
	return diffLimits{nodeSample: 0, absentPairs: 200, reachPairs: 60}
}

// diffObservables compares the query observables between the router
// and the oracle for the given stream.
func diffObservables(t *testing.T, routerURL, oracleURL string, items []stream.Item, seed int64) {
	t.Helper()
	lim := equivLimits()
	nodes := nodesOf(items)
	rnd := rand.New(rand.NewSource(seed))

	// /stats item counts: the members partition the stream exactly.
	var rStats, oStats gss.Stats
	getJSON(t, routerURL+"/stats", &rStats)
	getJSON(t, oracleURL+"/stats", &oStats)
	if rStats.Items != oStats.Items {
		t.Fatalf("stats: router holds %d items, oracle %d", rStats.Items, oStats.Items)
	}

	// /edge over every stream edge plus absent pairs.
	type pair struct{ s, d string }
	seen := make(map[pair]bool)
	for _, it := range items {
		seen[pair{it.Src, it.Dst}] = true
	}
	checkEdge := func(s, d string) {
		t.Helper()
		var re, oe edgeAnswer
		q := "/edge?src=" + queryEscape(s) + "&dst=" + queryEscape(d)
		getJSON(t, routerURL+q, &re)
		getJSON(t, oracleURL+q, &oe)
		if re != oe {
			t.Fatalf("edge %s->%s: router %+v, oracle %+v", s, d, re, oe)
		}
	}
	for p := range seen {
		checkEdge(p.s, p.d)
	}
	for i := 0; i < lim.absentPairs; i++ {
		s, d := nodes[rnd.Intn(len(nodes))], nodes[rnd.Intn(len(nodes))]
		checkEdge(s, d)
	}

	// Per-node observables: successor/precursor sets and both
	// aggregates — every node in the full suite, a seeded sample under
	// -short.
	checkNodes := nodes
	if lim.nodeSample > 0 && len(nodes) > lim.nodeSample {
		perm := rnd.Perm(len(nodes))[:lim.nodeSample]
		checkNodes = make([]string, lim.nodeSample)
		for i, p := range perm {
			checkNodes[i] = nodes[p]
		}
	}
	for _, v := range checkNodes {
		var rs, os nodesAnswer
		q := "/successors?v=" + queryEscape(v)
		getJSON(t, routerURL+q, &rs)
		getJSON(t, oracleURL+q, &os)
		if !reflect.DeepEqual(rs.Nodes, os.Nodes) {
			t.Fatalf("successors(%s): router %v, oracle %v", v, rs.Nodes, os.Nodes)
		}
		q = "/precursors?v=" + queryEscape(v)
		getJSON(t, routerURL+q, &rs)
		getJSON(t, oracleURL+q, &os)
		if !reflect.DeepEqual(rs.Nodes, os.Nodes) {
			t.Fatalf("precursors(%s): router %v, oracle %v", v, rs.Nodes, os.Nodes)
		}
		var rOut, oOut struct {
			Out int64 `json:"out"`
		}
		getJSON(t, routerURL+"/nodeout?v="+queryEscape(v), &rOut)
		getJSON(t, oracleURL+"/nodeout?v="+queryEscape(v), &oOut)
		if rOut != oOut {
			t.Fatalf("nodeout(%s): router %d, oracle %d", v, rOut.Out, oOut.Out)
		}
		var rIn, oIn struct {
			In int64 `json:"in"`
		}
		getJSON(t, routerURL+"/nodein?v="+queryEscape(v), &rIn)
		getJSON(t, oracleURL+"/nodein?v="+queryEscape(v), &oIn)
		if rIn != oIn {
			t.Fatalf("nodein(%s): router %d, oracle %d", v, rIn.In, oIn.In)
		}
	}

	// /nodes: full union and a truncated page.
	var rn, on nodesAnswer
	getJSON(t, routerURL+"/nodes?limit=0", &rn)
	getJSON(t, oracleURL+"/nodes?limit=0", &on)
	if rn.Total != on.Total || !reflect.DeepEqual(rn.Nodes, on.Nodes) {
		t.Fatalf("nodes: router %d total, oracle %d total", rn.Total, on.Total)
	}
	getJSON(t, routerURL+"/nodes?limit=7", &rn)
	if len(rn.Nodes) != 7 || rn.Total != on.Total {
		t.Fatalf("nodes limit=7: got %d nodes, total %d (want 7, %d)",
			len(rn.Nodes), rn.Total, on.Total)
	}

	// /heavy at several thresholds, compared as (src,dst,weight)
	// multisets: the router's merge is over per-member lists whose
	// group order may differ from the oracle's single matrix scan.
	for _, min := range []int64{1, 50, 200} {
		rh := flattenHeavy(t, routerURL, min)
		oh := flattenHeavy(t, oracleURL, min)
		if !reflect.DeepEqual(rh, oh) {
			t.Fatalf("heavy(min=%d): router %d edges, oracle %d\nrouter: %v\noracle: %v",
				min, len(rh), len(oh), rh, oh)
		}
	}

	// /reachable over random pairs plus guaranteed-positive pairs from
	// the stream itself.
	checkReach := func(s, d string) {
		t.Helper()
		var rr, or struct {
			Reachable bool `json:"reachable"`
		}
		q := "/reachable?src=" + queryEscape(s) + "&dst=" + queryEscape(d)
		getJSON(t, routerURL+q, &rr)
		getJSON(t, oracleURL+q, &or)
		if rr != or {
			t.Fatalf("reachable %s->%s: router %v, oracle %v", s, d, rr.Reachable, or.Reachable)
		}
	}
	for i := 0; i < lim.reachPairs; i++ {
		checkReach(nodes[rnd.Intn(len(nodes))], nodes[rnd.Intn(len(nodes))])
	}
	for i := 0; i < lim.reachPairs/3+2; i++ {
		it := items[rnd.Intn(len(items))]
		checkReach(it.Src, it.Dst)
	}
}

type flatHeavy struct {
	Src, Dst string
	Weight   int64
}

func flattenHeavy(t *testing.T, base string, min int64) []flatHeavy {
	t.Helper()
	var page []struct {
		Srcs   []string `json:"srcs"`
		Dsts   []string `json:"dsts"`
		Weight int64    `json:"weight"`
	}
	getJSON(t, base+"/heavy?min="+strconv.FormatInt(min, 10), &page)
	var out []flatHeavy
	for _, he := range page {
		for _, s := range he.Srcs {
			for _, d := range he.Dsts {
				out = append(out, flatHeavy{s, d, he.Weight})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// clusterOf builds n members of the given backend, a router over them,
// and ingests the stream through the router.
func clusterOf(t *testing.T, n int, opt server.Options, cfg Config, items []stream.Item) ([]*testMember, *Router, string) {
	t.Helper()
	members := make([]*testMember, n)
	urls := make([]string, n)
	for i := range members {
		members[i] = startMember(t, opt)
		urls[i] = members[i].ts.URL
		t.Cleanup(members[i].stop)
	}
	cfg.Members = urls
	rt, ts := newTestRouter(t, cfg)
	resp, raw := postBody(t, ts.URL+"/ingest", ndjsonBody(items), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster ingest status %d: %s", resp.StatusCode, raw)
	}
	return members, rt, ts.URL
}

// oracleOf builds the single-node oracle and ingests the stream
// directly.
func oracleOf(t *testing.T, opt server.Options, items []stream.Item) string {
	t.Helper()
	oracle := startMember(t, opt)
	t.Cleanup(oracle.stop)
	resp, raw := postBody(t, oracle.ts.URL+"/ingest", ndjsonBody(items), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oracle ingest status %d: %s", resp.StatusCode, raw)
	}
	return oracle.ts.URL
}

// TestClusterEquivalence: the headline acceptance test — a 3-member
// router answers every query exactly like one unpartitioned server.
func TestClusterEquivalence(t *testing.T) {
	items := equivStream(250, 1500, 11)
	opt := server.Options{Backend: sketch.BackendConcurrent}
	_, _, routerURL := clusterOf(t, 3, opt, Config{}, items)
	oracleURL := oracleOf(t, opt, items)
	diffObservables(t, routerURL, oracleURL, items, 101)
}

// TestClusterEquivalenceSweep runs the same diff across every backend
// members can be built with — the router treats members as black boxes,
// so composition with each backend must hold. Slow (4 backends × full
// observable sweep), hence gated off -short per the repo convention.
func TestClusterEquivalenceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-backend cluster equivalence sweep skipped in -short")
	}
	items := equivStream(300, 2500, 23)
	for _, backend := range sketch.Backends() {
		t.Run(backend, func(t *testing.T) {
			opt := server.Options{Backend: backend, Shards: 4,
				// The windowed backend must hold the whole test stream
				// live: a span beyond the generated timestamps makes the
				// window equal to the unbounded sketch.
				WindowSpan: 1 << 40, WindowGenerations: 4}
			_, _, routerURL := clusterOf(t, 3, opt, Config{}, items)
			oracleURL := oracleOf(t, opt, items)
			diffObservables(t, routerURL, oracleURL, items, 307)
		})
	}
}

// TestClusterEquivalenceSpillReplay: equivalence must survive a member
// being killed in the middle of the ingest workload with its writes
// absorbed by the router's spill log — the acceptance criterion that
// proves spill + replay delivers the partition's exact multiset of
// items, neither losing nor double-counting any.
//
// Timeline: first half of the stream flows normally; the durable
// member (operation log, fsync per append) is crash-killed; the second
// half is ingested with that partition's items spilling; the member
// restarts, recovers its own log, and the router replays the spill.
// The final state must diff clean against an oracle that saw the whole
// stream uninterrupted.
func TestClusterEquivalenceSpillReplay(t *testing.T) {
	items := equivStream(200, 1200, 47)
	opt := server.Options{Backend: sketch.BackendConcurrent}

	m0 := startMember(t, opt)
	t.Cleanup(m0.stop)
	m2 := startMember(t, opt)
	t.Cleanup(m2.stop)
	rm := startRestartableMember(t, server.Options{Backend: sketch.BackendConcurrent,
		LogDir: t.TempDir(), LogSyncEvery: -1})

	rt, ts := newTestRouter(t, Config{
		Members:       []string{m0.ts.URL, rm.url(), m2.ts.URL},
		ProbeInterval: 25 * time.Millisecond,
		SpillDir:      t.TempDir(),
	})
	idx := memberIndex(t, rt, rm.url())

	half := len(items) / 2
	resp, raw := postBody(t, ts.URL+"/ingest", ndjsonBody(items[:half]), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first-half ingest status %d: %s", resp.StatusCode, raw)
	}

	// Crash the durable member and wait for the prober's verdict, so the
	// second half spills deterministically instead of racing a torn pipe.
	rm.kill()
	waitMember(t, rt, idx, "member down", func(ms MemberStatus) bool { return !ms.Healthy })

	var res writeRes
	resp, raw = postBody(t, ts.URL+"/ingest", ndjsonBody(items[half:]), &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second-half ingest status %d: %s", resp.StatusCode, raw)
	}
	if res.Spilled == 0 {
		t.Fatalf("nothing spilled for the dead partition: %s", raw)
	}
	if res.Ingested+res.Spilled != int64(len(items)-half) {
		t.Fatalf("second half accounting: ingested %d + spilled %d != %d",
			res.Ingested, res.Spilled, len(items)-half)
	}

	// Recovery: the member replays its own operation log (first-half
	// items), then the router's spill replay delivers the second-half
	// items it absorbed.
	rm.restart()
	waitMember(t, rt, idx, "spill drained", func(ms MemberStatus) bool {
		return ms.Healthy && ms.Spill.PendingItems == 0 && ms.Spill.Replays >= 1
	})
	if got := rt.Stats().Members[idx].Spill.ReplayedItems; got != res.Spilled {
		t.Fatalf("replayed %d items, spilled %d", got, res.Spilled)
	}

	oracleURL := oracleOf(t, opt, items)
	diffObservables(t, ts.URL, oracleURL, items, 601)
}

// TestClusterEquivalenceFailover: equivalence must survive a member
// being swapped for its follower replica mid-run — the acceptance
// criterion that proves fail-over serves the partition's full state,
// not an approximation of it.
func TestClusterEquivalenceFailover(t *testing.T) {
	items := equivStream(200, 1200, 31)
	opt := server.Options{Backend: sketch.BackendConcurrent}

	members := make([]*testMember, 3)
	urls := make([]string, 3)
	for i := range members {
		members[i] = startMember(t, opt)
		urls[i] = members[i].ts.URL
		t.Cleanup(members[i].stop)
	}
	// The poll interval is deliberately not aggressive: every poll makes
	// the primary serialize its whole sketch under the write lock, and a
	// near-continuous snapshot loop would serialize the equivalence
	// queries behind it (very visibly so under -race).
	follower := startMember(t, server.Options{Backend: sketch.BackendConcurrent,
		FollowURL: urls[0], FollowInterval: 300 * time.Millisecond})
	t.Cleanup(follower.stop)

	rt, ts := newTestRouter(t, Config{Members: urls,
		Failover:      map[string]string{urls[0]: follower.ts.URL},
		ProbeInterval: 50 * time.Millisecond})
	resp, raw := postBody(t, ts.URL+"/ingest", ndjsonBody(items), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster ingest status %d: %s", resp.StatusCode, raw)
	}
	oracleURL := oracleOf(t, opt, items)

	// First pass with all primaries up.
	diffObservables(t, ts.URL, oracleURL, items, 401)

	// Wait for the follower to converge on member 0, then kill the
	// primary: partition 0's reads swap to the follower mid-run.
	want := members[0].srv.Sketch().Stats().Items
	deadline := time.Now().Add(10 * time.Second)
	for follower.srv.Sketch().Stats().Items != want {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d items, want %d",
				follower.srv.Sketch().Stats().Items, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	members[0].die(t)

	// Second pass: every observable must still match the oracle.
	diffObservables(t, ts.URL, oracleURL, items, 467)
	if rt.Stats().Members[0].FailedOverReads == 0 {
		t.Fatal("failover pass never touched the follower")
	}
}
