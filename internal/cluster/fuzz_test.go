package cluster

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/stream"
)

// The router's /insert body decoder parses attacker-reachable bytes
// before anything is routed, so it gets the same fuzz treatment as the
// other decode surfaces: whatever the input, items or an error — never
// a panic — and nothing without both endpoints may pass.

var insertSeeds = [][]byte{
	[]byte(`{"src":"a","dst":"b"}`),
	[]byte(`{"src":"a","dst":"b","weight":5,"time":9,"label":2}`),
	[]byte(`[{"src":"a","dst":"b"},{"src":"b","dst":"c","weight":-3}]`),
	[]byte(`[]`),
	[]byte(`{"src":"","dst":"b"}`),
	[]byte(`{"src":"a"`),
	[]byte(`"just a string"`),
	[]byte(`[{"src":"a","dst":"b"},42]`),
	[]byte("{\"src\":\"\\u00e9\",\"dst\":\"\\ud83d\\ude00\"}"),
	{0xff, 0xfe, '{', '}'},
}

func FuzzDecodeInsert(f *testing.F) {
	for _, seed := range insertSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := decodeInsertItems(data)
		if err != nil {
			return
		}
		for _, it := range items {
			if it.Src == "" || it.Dst == "" {
				t.Fatalf("decoder passed an item without endpoints: %+v", it)
			}
		}
	})
}

// TestDecodeInsertDefaults pins the wire semantics the fuzz target
// cannot see: omitted weight means one observation, and both the
// object and the array form decode.
func TestDecodeInsertDefaults(t *testing.T) {
	items, err := decodeInsertItems([]byte(`{"src":"a","dst":"b"}`))
	if err != nil || len(items) != 1 || items[0].Weight != 1 {
		t.Fatalf("object form: %v %+v", err, items)
	}
	items, err = decodeInsertItems([]byte(`[{"src":"a","dst":"b","weight":7,"time":3,"label":2},{"src":"b","dst":"c"}]`))
	if err != nil || len(items) != 2 {
		t.Fatalf("array form: %v %+v", err, items)
	}
	if items[0].Weight != 7 || items[0].Time != 3 || items[0].Label != 2 || items[1].Weight != 1 {
		t.Fatalf("fields lost: %+v", items)
	}
	if _, err := decodeInsertItems([]byte(`[{"src":"a","dst":""}]`)); err == nil {
		t.Fatal("missing dst accepted")
	}
}

// The migrator's partition-transfer decode path reads the GSS1 body a
// losing member exported — bytes that crossed the network — through
// stream.NewReader and routes each item by its source node. The fuzz
// contract: any byte string yields items then a clean stop or an error,
// never a panic, and every decoded item routes.

// encodeTransfer renders items the way /partition/export does.
func encodeTransfer(items ...stream.Item) []byte {
	var buf bytes.Buffer
	w := stream.NewWriter(&buf)
	for _, it := range items {
		if err := w.WriteItem(it); err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func partitionTransferSeeds() [][]byte {
	full := encodeTransfer(
		stream.Item{Src: "a", Dst: "b", Weight: 3, Time: 9, Label: 1},
		stream.Item{Src: "owned0-1", Dst: "hub", Weight: 1},
		stream.Item{Src: "", Dst: "", Weight: -7, Time: -1},
	)
	return [][]byte{
		nil,                // empty transfer body
		encodeTransfer(),   // header-only (an empty partition)
		full,               // well-formed multi-item body
		full[:len(full)-1], // truncated inside the last record
		full[:len(full)/2], // truncated mid-stream
		append(append([]byte(nil), full...), 0xff, 0x81), // trailing garbage
		[]byte("GSS1"),           // bare magic
		[]byte("GSS2junk"),       // wrong magic
		{0x00, 0x01, 0x02, 0x03}, // binary noise
		append([]byte("GSS1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01), // huge length prefix
		append([]byte("GSS1"), 0x05), // fuzzer-found: cut right after a length prefix
	}
}

func FuzzPartitionTransfer(f *testing.F) {
	for _, seed := range partitionTransferSeeds() {
		f.Add(seed)
	}
	ring, err := NewRing([]string{"http://a", "http://b", "http://c"})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sr := stream.NewReader(bytes.NewReader(data))
		n := 0
		for {
			it, ok := sr.Next()
			if !ok {
				break
			}
			// Routing is total: whatever decodes must map to a member.
			if idx := ring.Owner(it.Src); idx < 0 || idx >= ring.Size() {
				t.Fatalf("decoded item routed outside the ring: %d", idx)
			}
			n++
		}
		// A clean empty decode of a GSS1 body longer than the bare header
		// would mean bytes were silently swallowed.
		if sr.Err() == nil && n == 0 && len(data) > 4 && bytes.HasPrefix(data, []byte("GSS1")) {
			t.Fatalf("reader silently swallowed %d bytes after the header", len(data)-4)
		}
	})
}

// TestGenerateClusterFuzzCorpus mirrors the repo corpus convention:
// committed seeds under testdata/fuzz replay on every go test run;
// GSS_GEN_CORPUS=1 regenerates them.
func TestGenerateClusterFuzzCorpus(t *testing.T) {
	corpora := map[string][][]byte{
		"FuzzDecodeInsert":      insertSeeds,
		"FuzzPartitionTransfer": partitionTransferSeeds(),
	}
	for name, seeds := range corpora {
		dir := filepath.Join("testdata", "fuzz", name)
		if os.Getenv("GSS_GEN_CORPUS") == "" {
			entries, err := os.ReadDir(dir)
			if err != nil || len(entries) == 0 {
				t.Fatalf("committed fuzz corpus for %s missing (%v); regenerate with GSS_GEN_CORPUS=1", name, err)
			}
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
			file := filepath.Join(dir, "seed-"+strconv.Itoa(i))
			if err := os.WriteFile(file, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
