package cluster

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// The router's /insert body decoder parses attacker-reachable bytes
// before anything is routed, so it gets the same fuzz treatment as the
// other decode surfaces: whatever the input, items or an error — never
// a panic — and nothing without both endpoints may pass.

var insertSeeds = [][]byte{
	[]byte(`{"src":"a","dst":"b"}`),
	[]byte(`{"src":"a","dst":"b","weight":5,"time":9,"label":2}`),
	[]byte(`[{"src":"a","dst":"b"},{"src":"b","dst":"c","weight":-3}]`),
	[]byte(`[]`),
	[]byte(`{"src":"","dst":"b"}`),
	[]byte(`{"src":"a"`),
	[]byte(`"just a string"`),
	[]byte(`[{"src":"a","dst":"b"},42]`),
	[]byte("{\"src\":\"\\u00e9\",\"dst\":\"\\ud83d\\ude00\"}"),
	{0xff, 0xfe, '{', '}'},
}

func FuzzDecodeInsert(f *testing.F) {
	for _, seed := range insertSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := decodeInsertItems(data)
		if err != nil {
			return
		}
		for _, it := range items {
			if it.Src == "" || it.Dst == "" {
				t.Fatalf("decoder passed an item without endpoints: %+v", it)
			}
		}
	})
}

// TestDecodeInsertDefaults pins the wire semantics the fuzz target
// cannot see: omitted weight means one observation, and both the
// object and the array form decode.
func TestDecodeInsertDefaults(t *testing.T) {
	items, err := decodeInsertItems([]byte(`{"src":"a","dst":"b"}`))
	if err != nil || len(items) != 1 || items[0].Weight != 1 {
		t.Fatalf("object form: %v %+v", err, items)
	}
	items, err = decodeInsertItems([]byte(`[{"src":"a","dst":"b","weight":7,"time":3,"label":2},{"src":"b","dst":"c"}]`))
	if err != nil || len(items) != 2 {
		t.Fatalf("array form: %v %+v", err, items)
	}
	if items[0].Weight != 7 || items[0].Time != 3 || items[0].Label != 2 || items[1].Weight != 1 {
		t.Fatalf("fields lost: %+v", items)
	}
	if _, err := decodeInsertItems([]byte(`[{"src":"a","dst":""}]`)); err == nil {
		t.Fatal("missing dst accepted")
	}
}

// TestGenerateClusterFuzzCorpus mirrors the repo corpus convention:
// committed seeds under testdata/fuzz replay on every go test run;
// GSS_GEN_CORPUS=1 regenerates them.
func TestGenerateClusterFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeInsert")
	if os.Getenv("GSS_GEN_CORPUS") == "" {
		entries, err := os.ReadDir(dir)
		if err != nil || len(entries) == 0 {
			t.Fatalf("committed fuzz corpus missing (%v); regenerate with GSS_GEN_CORPUS=1", err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range insertSeeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		name := filepath.Join(dir, "seed-"+strconv.Itoa(i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
