package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/hashing"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// gsb1Body encodes items as a GSB1 body, one frame per frameSize items.
func gsb1Body(t *testing.T, items []stream.Item, frameSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := stream.NewBinaryBatchWriter(&buf)
	for i := 0; i < len(items); i += frameSize {
		j := i + frameSize
		if j > len(items) {
			j = len(items)
		}
		if err := bw.WriteItems(items[i:j]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postBinaryBody(t *testing.T, url string, body []byte, out interface{}) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, stream.ContentTypeBinary, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", url, raw, err)
		}
	}
	return resp, raw
}

// TestClusterIngestContentTypes pins the router's /ingest content-type
// table to the member one: known types on both planes keep working,
// unknown types answer 415 before any member is touched.
func TestClusterIngestContentTypes(t *testing.T) {
	members, urls := startMembers(t, 2, sketch.BackendConcurrent)
	_, ts := newTestRouter(t, Config{Members: urls})
	items := []stream.Item{{Src: "a", Dst: "b", Weight: 3, Time: 1}}

	resp, raw := postBody(t, ts.URL+"/ingest", ndjsonBody(items), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ndjson status %d: %s", resp.StatusCode, raw)
	}
	resp, raw = postBinaryBody(t, ts.URL+"/ingest", gsb1Body(t, items, 16), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary status %d: %s", resp.StatusCode, raw)
	}

	for _, ct := range []string{"application/octet-stream", "text/csv"} {
		resp, err := http.Post(ts.URL+"/ingest", ct, strings.NewReader("whatever"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("Content-Type %q: status %d, want 415", ct, resp.StatusCode)
		}
	}
	var total int64
	for _, m := range members {
		total += m.srv.Sketch().Stats().Items
	}
	if total != 2 {
		t.Fatalf("members hold %d items, want 2 (rejected bodies must not land)", total)
	}
}

// TestClusterBinaryIngestEquivalence is the cluster half of the plane
// differential: one stream posted as GSB1 through a 3-member router
// must answer every query exactly like a single-node oracle that
// ingested the same stream as NDJSON — partitioning by carried hash,
// re-framing, and the members' hashed insert path all on trial.
func TestClusterBinaryIngestEquivalence(t *testing.T) {
	items := equivStream(250, 1500, 19)
	opt := server.Options{Backend: sketch.BackendConcurrent}

	_, urls := startMembers(t, 3, sketch.BackendConcurrent)
	_, ts := newTestRouter(t, Config{Members: urls})
	var res writeRes
	resp, raw := postBinaryBody(t, ts.URL+"/ingest", gsb1Body(t, items, 100), &res)
	if resp.StatusCode != http.StatusOK || res.Ingested != int64(len(items)) {
		t.Fatalf("binary cluster ingest: status %d, %s", resp.StatusCode, raw)
	}
	oracleURL := oracleOf(t, opt, items)
	diffObservables(t, ts.URL, oracleURL, items, 211)
}

// TestClusterBinaryRoutesByCarriedHash is the router-level no-re-hash
// assertion: a record whose carried H(src) belongs to a DIFFERENT
// identifier than its Src string must land on the carried hash's
// partition. If the router derived the routing key from the string (a
// full per-item decode), the record would land on the string's owner.
func TestClusterBinaryRoutesByCarriedHash(t *testing.T) {
	members, urls := startMembers(t, 3, sketch.BackendConcurrent)
	rt, ts := newTestRouter(t, Config{Members: urls})
	ring := rt.Ring()

	shadowOwner := ring.Owner("shadow")
	carried := ""
	for k := 0; carried == ""; k++ {
		c := "carry-" + strconv.Itoa(k)
		if ring.Owner(c) != shadowOwner {
			carried = c
		}
	}
	hs, hd := hashing.Hash64(carried), hashing.Hash64("dst")
	var buf bytes.Buffer
	bw := stream.NewBinaryBatchWriter(&buf)
	if err := bw.WriteBatch([]stream.HashedItem{{
		Item: stream.Item{Src: "shadow", Dst: "dst", Weight: 5, Time: 1},
		HSrc: hs, HDst: hd, FPs: stream.PackFingerprints(hs, hd),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, raw := postBinaryBody(t, ts.URL+"/ingest", buf.Bytes(), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := members[ring.Owner(carried)].srv.Sketch().Stats().Items; got != 1 {
		t.Fatalf("carried hash's partition holds %d items, want 1", got)
	}
	if got := members[shadowOwner].srv.Sketch().Stats().Items; got != 0 {
		t.Fatal("record landed on the Src string's partition: the router re-derived the routing key")
	}
}

// TestClusterBinarySpillReplay: the binary plane's spill path — a down
// partition's records are absorbed as already-encoded payload bytes
// (oplog.AppendEncoded, no decode/re-encode) and replayed on recovery,
// after which the cluster diffs clean against an uninterrupted NDJSON
// oracle. The cross-plane oracle also re-proves plane equivalence
// under the degraded path.
func TestClusterBinarySpillReplay(t *testing.T) {
	items := equivStream(150, 900, 53)
	opt := server.Options{Backend: sketch.BackendConcurrent}

	m0 := startMember(t, opt)
	t.Cleanup(m0.stop)
	m2 := startMember(t, opt)
	t.Cleanup(m2.stop)
	rm := startRestartableMember(t, server.Options{Backend: sketch.BackendConcurrent,
		LogDir: t.TempDir(), LogSyncEvery: -1})

	rt, ts := newTestRouter(t, Config{
		Members:       []string{m0.ts.URL, rm.url(), m2.ts.URL},
		ProbeInterval: 25 * time.Millisecond,
		SpillDir:      t.TempDir(),
	})
	idx := memberIndex(t, rt, rm.url())

	half := len(items) / 2
	resp, raw := postBinaryBody(t, ts.URL+"/ingest", gsb1Body(t, items[:half], 64), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first-half ingest status %d: %s", resp.StatusCode, raw)
	}

	rm.kill()
	waitMember(t, rt, idx, "member down", func(ms MemberStatus) bool { return !ms.Healthy })

	var res writeRes
	resp, raw = postBinaryBody(t, ts.URL+"/ingest", gsb1Body(t, items[half:], 64), &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second-half ingest status %d: %s", resp.StatusCode, raw)
	}
	if res.Spilled == 0 {
		t.Fatalf("nothing spilled for the dead partition: %s", raw)
	}
	if res.Ingested+res.Spilled != int64(len(items)-half) {
		t.Fatalf("second half accounting: ingested %d + spilled %d != %d",
			res.Ingested, res.Spilled, len(items)-half)
	}

	rm.restart()
	waitMember(t, rt, idx, "spill drained", func(ms MemberStatus) bool {
		return ms.Healthy && ms.Spill.PendingItems == 0 && ms.Spill.Replays >= 1
	})
	if got := rt.Stats().Members[idx].Spill.ReplayedItems; got != res.Spilled {
		t.Fatalf("replayed %d items, spilled %d", got, res.Spilled)
	}

	oracleURL := oracleOf(t, opt, items)
	diffObservables(t, ts.URL, oracleURL, items, 701)
}

// TestClusterBinaryBadFrame: a corrupted frame mid-body answers 400
// with the whole frames before it already delivered — frame atomicity
// holds across the router hop too.
func TestClusterBinaryBadFrame(t *testing.T) {
	members, urls := startMembers(t, 2, sketch.BackendConcurrent)
	_, ts := newTestRouter(t, Config{Members: urls})

	good := gsb1Body(t, []stream.Item{{Src: "x", Dst: "y", Weight: 1, Time: 1}}, 16)
	body := append(append([]byte{}, good...), 0xFF, 0xFF, 0xFF, 0xFF, 0x0F) // forged frame length
	resp, raw := postBinaryBody(t, ts.URL+"/ingest", body, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, raw)
	}
	var total int64
	for _, m := range members {
		total += m.srv.Sketch().Stats().Items
	}
	if total != 1 {
		t.Fatalf("members hold %d items, want the 1 from the good frame", total)
	}
}
