package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultproxy"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Read-plane battery: the deadline/retry/partial discipline in read.go
// under deterministic faults. The randomized end of the spectrum lives
// in chaos_test.go.

// getFull is getJSON plus the pieces the read-plane tests assert on:
// the raw body and the response headers.
func getFull(t *testing.T, url string, out interface{}) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, raw, err)
		}
	}
	return resp, raw
}

// stubMember fakes just enough of a member for unit-level read-plane
// tests: a healthy /healthz plus whatever handler the test installs.
func stubMember(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			writeJSON(w, map[string]string{"status": "ok", "role": "stub", "backend": "stub"})
			return
		}
		handler(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestMemberGetJSONNon200: a member answering a scatter leg with a
// non-200 fails that leg with the status and body in the error — and a
// 4xx is a verdict, not a flake, so it must not burn retries.
func TestMemberGetJSONNon200(t *testing.T) {
	stub := stubMember(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "synthetic member refusal", http.StatusNotFound)
	})
	rt, ts := newTestRouter(t, Config{Members: []string{stub.URL}, ProbeInterval: time.Hour})

	resp, raw := getFull(t, ts.URL+"/precursors?v=x", nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 (body %s)", resp.StatusCode, raw)
	}
	for _, want := range []string{"returned 404", "synthetic member refusal", "/precursors"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("502 body %q does not mention %q", raw, want)
		}
	}
	if got := rt.Stats().Members[0].ReadRetries; got != 0 {
		t.Fatalf("a 404 burned %d retries; 4xx must not retry", got)
	}
}

// TestMemberGetRetries5xx: transient 5xx answers on an idempotent GET
// are retried within the same request, and the retries are counted.
func TestMemberGetRetries5xx(t *testing.T) {
	var calls atomic.Int64
	stub := stubMember(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]int64{"in": 7})
	})
	rt, ts := newTestRouter(t, Config{Members: []string{stub.URL},
		ProbeInterval: time.Hour, RetryBackoff: time.Millisecond})

	var res struct {
		In int64 `json:"in"`
	}
	if code := getJSON(t, ts.URL+"/nodein?v=x", &res); code != http.StatusOK {
		t.Fatalf("status %d, want 200 after 5xx retries", code)
	}
	if res.In != 7 {
		t.Fatalf("in = %d, want 7", res.In)
	}
	if got := rt.Stats().Members[0].ReadRetries; got != 2 {
		t.Fatalf("read_retries = %d, want 2", got)
	}
}

// TestMemberResponseSizeCap: a member body over MaxResponseBytes fails
// that member's read instead of being decoded — the regression is a
// huge /nodes?limit=0 enumeration ballooning the router.
func TestMemberResponseSizeCap(t *testing.T) {
	big := make([]string, 0, 2048)
	for i := 0; i < 2048; i++ {
		big = append(big, fmt.Sprintf("node-%04d", i))
	}
	stub := stubMember(t, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]interface{}{"nodes": big})
	})
	rt, ts := newTestRouter(t, Config{Members: []string{stub.URL},
		ProbeInterval: time.Hour, MaxResponseBytes: 4096, RetryBackoff: time.Millisecond})

	resp, raw := getFull(t, ts.URL+"/nodes?limit=0", nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 (body %.120s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "exceeds 4096 bytes") {
		t.Fatalf("502 body %q does not name the size cap", raw)
	}
	// The cap sizes one member response, not the merged result: a body
	// under the cap flows through untouched.
	small := stubMember(t, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]interface{}{"nodes": []string{"a", "b"}})
	})
	_, rts := newTestRouter(t, Config{Members: []string{small.URL},
		ProbeInterval: time.Hour, MaxResponseBytes: 1 << 20})
	var page struct {
		Total int `json:"total"`
	}
	if code := getJSON(t, rts.URL+"/nodes", &page); code != http.StatusOK || page.Total != 2 {
		t.Fatalf("under-cap read: status %d total %d, want 200/2", code, page.Total)
	}
	_ = rt
}

// TestOptimisticRecoveryBeforeProbe: a down-marked member with no
// follower serves reads again the moment it is back — the read path's
// optimistic retry must not wait for the prober (which this test
// effectively disables).
func TestOptimisticRecoveryBeforeProbe(t *testing.T) {
	fm := startFaultMember(t, server.Options{Backend: sketch.BackendConcurrent})
	rt, ts := newTestRouter(t, Config{Members: []string{fm.url},
		ProbeInterval: time.Hour, RetryBackoff: time.Millisecond})

	resp, _ := postBody(t, ts.URL+"/insert", `{"src":"a","dst":"b","weight":1}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed insert status %d", resp.StatusCode)
	}

	fm.kill()
	if code := getJSON(t, ts.URL+"/nodes", nil); code != http.StatusBadGateway {
		t.Fatalf("dead member read status %d, want 502", code)
	}
	if st := rt.Stats(); st.DownMembers != 1 {
		t.Fatalf("down_members = %d after failed read, want 1", st.DownMembers)
	}

	fm.revive()
	var page struct {
		Total int `json:"total"`
	}
	if code := getJSON(t, ts.URL+"/nodes", &page); code != http.StatusOK {
		t.Fatalf("revived member read status %d, want 200 before any probe tick", code)
	}
	if page.Total != 2 {
		t.Fatalf("revived read total = %d, want 2", page.Total)
	}
	if st := rt.Stats(); st.DownMembers != 0 {
		t.Fatalf("down_members = %d after recovered read, want 0", st.DownMembers)
	}
}

// TestPartialReadsDisabledByDefault: without AllowPartialReads the
// partial parameter is an explicit 400, never silently ignored.
func TestPartialReadsDisabledByDefault(t *testing.T) {
	_, urls := startMembers(t, 1, sketch.BackendConcurrent)
	_, ts := newTestRouter(t, Config{Members: urls, ProbeInterval: time.Hour})
	for _, path := range []string{"/nodes?partial=1", "/stats?partial=true",
		"/edge?src=a&dst=b&partial=1", "/reachable?src=a&dst=b&partial=1"} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 while partial reads are disabled", path, code)
		}
	}
	// Garbage values are 400 even with the feature enabled.
	_, ts2 := newTestRouter(t, Config{Members: urls, ProbeInterval: time.Hour,
		AllowPartialReads: true})
	if code := getJSON(t, ts2.URL+"/nodes?partial=2", nil); code != http.StatusBadRequest {
		t.Errorf("partial=2: status %d, want 400", code)
	}
}

// TestPartialScatterGather: with one member dead, strict scatter reads
// are a cluster-wide 502 while ?partial=1 serves the surviving merge
// with the partial marker, the missing-member list, and the counters.
func TestPartialScatterGather(t *testing.T) {
	fms := make([]*faultMember, 2)
	urls := make([]string, 2)
	for i := range fms {
		fms[i] = startFaultMember(t, server.Options{Backend: sketch.BackendConcurrent})
		urls[i] = fms[i].url
	}
	rt, ts := newTestRouter(t, Config{Members: urls, ProbeInterval: time.Hour,
		RetryBackoff: time.Millisecond, AllowPartialReads: true})

	owned0 := keysOwnedBy(rt.Ring(), 0, 2)
	owned1 := keysOwnedBy(rt.Ring(), 1, 1)
	items := []stream.Item{
		{Src: owned0[0], Dst: owned1[0], Weight: 3}, // crosses into partition 1
		{Src: owned0[0], Dst: owned0[1], Weight: 2},
		{Src: owned1[0], Dst: owned0[1], Weight: 5}, // lives on partition 1
	}
	resp, raw := postBody(t, ts.URL+"/ingest", ndjsonBody(items), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed ingest status %d: %s", resp.StatusCode, raw)
	}

	fms[1].kill()

	// Strict mode: all-or-nothing, no partial leakage.
	for _, path := range []string{"/nodes", "/stats", "/heavy?min=1",
		"/nodein?v=" + owned0[1], "/precursors?v=" + owned0[1]} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusBadGateway {
			t.Errorf("strict %s with dead member: status %d, want 502", path, code)
		}
	}

	// Partial /nodes: surviving member's view, flagged.
	var nodes struct {
		Nodes          []string `json:"nodes"`
		Partial        bool     `json:"partial"`
		MissingMembers []string `json:"missing_members"`
	}
	nresp, nraw := getFull(t, ts.URL+"/nodes?partial=1", &nodes)
	if nresp.StatusCode != http.StatusOK {
		t.Fatalf("partial /nodes status %d: %s", nresp.StatusCode, nraw)
	}
	if !nodes.Partial {
		t.Fatalf("partial /nodes not flagged: %s", nraw)
	}
	if len(nodes.MissingMembers) != 1 || nodes.MissingMembers[0] != fms[1].url {
		t.Fatalf("missing_members = %v, want [%s]", nodes.MissingMembers, fms[1].url)
	}
	if got := nresp.Header.Get(headerPartial); got != "true" {
		t.Fatalf("%s = %q, want true", headerPartial, got)
	}
	if got := nresp.Header.Get(headerMissing); got != fms[1].url {
		t.Fatalf("%s = %q, want %q", headerMissing, got, fms[1].url)
	}
	if len(nodes.Nodes) == 0 {
		t.Fatal("partial /nodes served no surviving data")
	}

	// Partial /stats: flattened gss.Stats plus the markers, counting
	// only the surviving partition's items.
	var stats struct {
		Items          int64    `json:"items"`
		Partial        bool     `json:"partial"`
		MissingMembers []string `json:"missing_members"`
	}
	if code := getJSON(t, ts.URL+"/stats?partial=1", &stats); code != http.StatusOK {
		t.Fatalf("partial /stats status %d", code)
	}
	if !stats.Partial || len(stats.MissingMembers) != 1 {
		t.Fatalf("partial /stats markers = %+v", stats)
	}
	if stats.Items != 2 {
		t.Fatalf("partial /stats items = %d, want the surviving member's 2", stats.Items)
	}

	// Partial /heavy: array payload, markers ride the headers.
	var heavy []heavyEdge
	hresp, hraw := getFull(t, ts.URL+"/heavy?min=1&partial=1", &heavy)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("partial /heavy status %d: %s", hresp.StatusCode, hraw)
	}
	if got := hresp.Header.Get(headerPartial); got != "true" {
		t.Fatalf("partial /heavy %s = %q, want true", headerPartial, got)
	}
	if len(heavy) != 2 {
		t.Fatalf("partial /heavy = %d edges, want the surviving member's 2 (%s)", len(heavy), hraw)
	}

	// Partial /reachable: a negative explored through a dead member is
	// uncertain; a positive found in surviving data is certain.
	var reach struct {
		Reachable bool `json:"reachable"`
		Certain   bool `json:"certain"`
		Partial   bool `json:"partial"`
	}
	if code := getJSON(t, ts.URL+"/reachable?src="+owned0[0]+"&dst=absent&partial=1", &reach); code != http.StatusOK {
		t.Fatalf("partial /reachable status %d", code)
	}
	if reach.Reachable || reach.Certain || !reach.Partial {
		t.Fatalf("negative through dead member = %+v, want uncertain partial false", reach)
	}
	if code := getJSON(t, ts.URL+"/reachable?src="+owned0[0]+"&dst="+owned0[1]+"&partial=1", &reach); code != http.StatusOK {
		t.Fatalf("partial /reachable status %d", code)
	}
	if !reach.Reachable || !reach.Certain {
		t.Fatalf("positive within surviving data = %+v, want certain true", reach)
	}
	if code := getJSON(t, ts.URL+"/reachable?src="+owned0[0]+"&dst=absent", nil); code != http.StatusBadGateway {
		t.Fatalf("strict /reachable through dead member: status %d, want 502", code)
	}

	st := rt.Stats()
	if st.PartialReads == 0 {
		t.Fatal("partial_reads counter never moved")
	}
	if st.Members[1].DegradedReads == 0 {
		t.Fatal("dead member's degraded_reads counter never moved")
	}

	// Healed cluster: partial mode reports full coverage.
	fms[1].revive()
	nresp, nraw = getFull(t, ts.URL+"/nodes?partial=1", &nodes)
	if nresp.StatusCode != http.StatusOK || nodes.Partial {
		t.Fatalf("healed partial /nodes: status %d partial %v (%s)", nresp.StatusCode, nodes.Partial, nraw)
	}
	if got := nresp.Header.Get(headerPartial); got != "false" {
		t.Fatalf("healed %s = %q, want false", headerPartial, got)
	}
	if len(nodes.Nodes) != 3 {
		t.Fatalf("healed /nodes = %v, want all 3", nodes.Nodes)
	}
}

// TestReadDeadlineBudget: a slow member cannot pin a fan-out past the
// request's deadline budget, and the timeout is counted against it.
func TestReadDeadlineBudget(t *testing.T) {
	fm := startFaultMember(t, server.Options{Backend: sketch.BackendConcurrent})
	rt, ts := newTestRouter(t, Config{Members: []string{fm.url},
		ProbeInterval: time.Hour, RetryBackoff: time.Millisecond})

	fm.setDelay("/nodes", 2*time.Second)
	start := time.Now()
	code := getJSON(t, ts.URL+"/nodes?timeout_ms=100", nil)
	elapsed := time.Since(start)
	if code != http.StatusBadGateway {
		t.Fatalf("deadline-bound read status %d, want 502", code)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline-bound read took %v, budget was 100ms", elapsed)
	}
	if got := rt.Stats().Members[0].DeadlineFails; got == 0 {
		t.Fatal("deadline_exceeded counter never moved")
	}

	for _, bad := range []string{"/nodes?timeout_ms=-5", "/nodes?timeout_ms=abc"} {
		if code := getJSON(t, ts.URL+bad, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, code)
		}
	}

	// timeout_ms=0 disables the budget: the slow read completes.
	fm.setDelay("/nodes", 50*time.Millisecond)
	if code := getJSON(t, ts.URL+"/nodes?timeout_ms=0", nil); code != http.StatusOK {
		t.Fatalf("unbounded slow read status %d, want 200", code)
	}
}

// TestProxyCopyFailureCounted: a client hanging up mid-body on a
// proxied single-member query shows up in the member's
// proxy_copy_failures instead of vanishing.
func TestProxyCopyFailureCounted(t *testing.T) {
	fm := startFaultMember(t, server.Options{Backend: sketch.BackendConcurrent})
	rt, ts := newTestRouter(t, Config{Members: []string{fm.url},
		ProbeInterval: time.Hour, RetryBackoff: time.Millisecond})

	// Enough fan-in that /successors has a body worth truncating.
	items := make([]stream.Item, 512)
	for i := range items {
		items[i] = stream.Item{Src: "hub", Dst: fmt.Sprintf("spoke-%03d", i), Weight: 1}
	}
	resp, raw := postBody(t, ts.URL+"/ingest", ndjsonBody(items), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed ingest status %d: %s", resp.StatusCode, raw)
	}

	// Throttle the member's body so the headers land but the payload
	// trickles, then hang up mid-body — the router's io.Copy to this
	// client must fail partway and be counted.
	fm.proxy.Set(faultproxy.Fault{Path: "/successors", Prob: 1, BytesPerSec: 2048})
	client := &http.Client{Timeout: 150 * time.Millisecond}
	if resp, err := client.Get(ts.URL + "/successors?v=hub"); err == nil {
		if _, err := io.ReadAll(resp.Body); err == nil {
			resp.Body.Close()
			t.Fatal("client read the whole throttled body; throttle did not bite")
		}
		resp.Body.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for rt.Stats().Members[0].ProxyCopyFails == 0 {
		if time.Now().After(deadline) {
			t.Fatal("proxy_copy_failures never moved after client hangup")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestProbeDelayJitter: the prober tick is spread across
// [interval/2, 3·interval/2) and actually varies.
func TestProbeDelayJitter(t *testing.T) {
	rt := &Router{cfg: Config{ProbeInterval: 100 * time.Millisecond}}
	seen := make(map[time.Duration]bool)
	for i := 0; i < 200; i++ {
		d := rt.probeDelay()
		if d < 50*time.Millisecond || d >= 150*time.Millisecond {
			t.Fatalf("probeDelay = %v, want [50ms, 150ms)", d)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatal("probeDelay never varied; jitter is missing")
	}
}
