package cluster

import (
	"repro/internal/hashing"
)

// topology is one immutable version of the cluster's member layout. The
// router holds the current one behind an atomic pointer: readers load
// it once per request and see a fully-applied ring no matter how the
// load interleaves with a membership change, and the migrator installs
// a new version with a single pointer swap under the write fence
// (Router.topoMu) — there is no observable half-applied state.
//
// During a migration's handoff window the topology carries TWO rings:
// ring (the serving layout — reads and primary writes) and next (the
// post-change layout). A write whose owner differs between the two is
// double-routed: the serving owner keeps it queryable, the future owner
// absorbs it so the final drop accounting stays exact. See migrate.go.
type topology struct {
	// version increments on every cutover; /cluster/stats reports it so
	// operators (and the coherence regression test) can watch the ring
	// advance atomically.
	version int64

	// ring is the serving layout; members is aligned with it.
	ring    *Ring
	members []*member

	// next is non-nil only during a handoff window: the layout being
	// migrated to, with nextMembers aligned. mig carries the migration's
	// shadow-write accounting while next is set.
	next        *Ring
	nextMembers []*member
	mig         *migration

	// all is every member this topology knows — the serving set plus any
	// joining member — and is what the prober and /cluster/stats walk.
	all []*member
}

// owner returns the serving owner of key.
func (t *topology) owner(key string) *member {
	return t.members[t.ring.Owner(key)]
}

// ownerHash is owner for a pre-hashed key (the binary ingest plane).
func (t *topology) ownerHash(kh uint64) *member {
	return t.members[t.ring.OwnerHash(kh)]
}

// shadowOwner returns the member that must ALSO receive a write for key
// during a handoff window, or nil when the write is single-homed (no
// handoff, or the key does not move).
func (t *topology) shadowOwner(key string) *member {
	if t.next == nil {
		return nil
	}
	return t.shadowOwnerHash(hashing.Hash64(key))
}

// shadowOwnerHash is shadowOwner for a pre-hashed key.
func (t *topology) shadowOwnerHash(kh uint64) *member {
	if t.next == nil {
		return nil
	}
	g := t.nextMembers[t.next.OwnerHash(kh)]
	if g == t.members[t.ring.OwnerHash(kh)] {
		return nil
	}
	return g
}

// shadowKey groups handoff double-writes by (serving owner, future
// owner): the loser attributes the shadow items to its drop budget, the
// gainer to its rollback budget.
type shadowKey struct {
	loser, gainer *member
}

// topology returns the current immutable member layout.
func (rt *Router) topology() *topology {
	return rt.topo.Load()
}

// unionMembers appends the members of b not already in a.
func unionMembers(a, b []*member) []*member {
	out := append([]*member(nil), a...)
	for _, m := range b {
		found := false
		for _, o := range out {
			if o == m {
				found = true
				break
			}
		}
		if !found {
			out = append(out, m)
		}
	}
	return out
}
