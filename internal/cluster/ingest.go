package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"

	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Write routing. Items partition by source node: the ring owner of
// it.Src gets the item, so a member holds complete out-edge sets for
// the nodes it owns. Writes only ever go to primaries — followers
// answer 403 by design — so when a partition's primary is down the
// router answers 429 with Retry-After, the same backpressure convention
// the bounded ingest queue uses: producers back off and retry instead
// of the router buffering without bound.

func queryEscape(s string) string { return url.QueryEscape(s) }

// wireItem is the JSON wire form of a stream item (the HTTP API's
// field names; omitted weight means one observation).
type wireItem struct {
	Src    string `json:"src"`
	Dst    string `json:"dst"`
	Weight int64  `json:"weight"`
	Time   int64  `json:"time,omitempty"`
	Label  uint32 `json:"label,omitempty"`
}

// decodeInsertItems parses an /insert body — a single JSON object or an
// array of them — into stream items, mirroring internal/server's
// semantics: src and dst are required, omitted weight defaults to 1.
func decodeInsertItems(body []byte) ([]stream.Item, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("bad JSON: %v", err)
	}
	var wires []wireItem
	if delim, ok := tok.(json.Delim); ok && delim == '[' {
		for dec.More() {
			wi := wireItem{Weight: 1}
			if err := dec.Decode(&wi); err != nil {
				return nil, fmt.Errorf("bad item: %v", err)
			}
			wires = append(wires, wi)
		}
	} else if ok && delim == '{' {
		// Re-decode the whole object: the opening brace was consumed.
		wi := wireItem{Weight: 1}
		if err := json.Unmarshal(body, &wi); err != nil {
			return nil, fmt.Errorf("bad item: %v", err)
		}
		wires = append(wires, wi)
	} else {
		return nil, fmt.Errorf("expected object or array, got %v", tok)
	}
	items := make([]stream.Item, len(wires))
	for i, wi := range wires {
		if wi.Src == "" || wi.Dst == "" {
			return nil, fmt.Errorf("src and dst are required")
		}
		items[i] = stream.Item{Src: wi.Src, Dst: wi.Dst, Weight: wi.Weight,
			Time: wi.Time, Label: wi.Label}
	}
	return items, nil
}

// retryAfter429 writes the 429 a down partition's writes receive,
// advising the producer to retry after the next probe tick. acceptedKey
// names the accepted-count field so it matches the endpoint's success
// shape ("inserted" for /insert, "ingested" for /ingest). spilled
// counts items durably absorbed into a spill log — those are accepted
// too, and reported separately so a retrying producer knows the
// dropped count alone is what it still owes.
func (rt *Router) retryAfter429(w http.ResponseWriter, acceptedKey string, accepted, spilled, dropped int64, member string) {
	secs := int(rt.cfg.ProbeInterval.Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	body := map[string]interface{}{
		"error":     fmt.Sprintf("partition down: member %s unreachable (writes need the primary)", member),
		acceptedKey: accepted,
		"dropped":   dropped,
	}
	if spilled > 0 {
		body["spilled"] = spilled
	}
	_ = json.NewEncoder(w).Encode(body)
}

// handleInsert splits the posted item(s) by owner and forwards each
// group as one member /insert. Groups owned by a down partition are
// absorbed into its spill log when one is configured (counted in the
// reply as "spilled" — they reach the member when it recovers);
// without a spill, or with the spill at budget, the split stays
// all-or-nothing: the whole request answers 429 before a single item
// lands, so a producer never has to untangle a partially applied
// small batch.
func (rt *Router) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<26))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	items, err := decodeInsertItems(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The whole request runs under the topology read fence: one snapshot
	// routes every item, and a migration's handoff/cutover (which take
	// the write side) cannot interleave with a half-forwarded batch.
	rt.topoMu.RLock()
	defer rt.topoMu.RUnlock()
	t := rt.topology()
	groups := make(map[*member][]stream.Item)
	for _, it := range items {
		m := t.owner(it.Src)
		groups[m] = append(groups[m], it)
	}
	// Known-down partitions are resolved before anything is sent: every
	// one of them must be spillable (spill configured and under budget)
	// or the whole batch answers 429 untouched — all-or-nothing.
	for m := range groups {
		if m.down.Load() && (m.spill == nil || m.spill.atBudget()) {
			rt.retryAfter429(w, "inserted", 0, 0, int64(len(items)), m.primary)
			return
		}
	}
	var spilled int64
	for m, group := range groups {
		if !m.down.Load() {
			continue
		}
		if err := m.spill.append(group); err != nil {
			// The budget was pre-checked, so this is an I/O failure: the
			// spill can no longer keep its durability promise.
			httpError(w, http.StatusInternalServerError, "cluster: spilling for %s: %v", m.primary, err)
			return
		}
		spilled += int64(len(group))
		delete(groups, m)
	}
	// During a handoff window every forwarded item whose owner changes
	// under the next ring is ALSO delivered to its future owner, grouped
	// by (current owner, future owner) so the migration can attribute the
	// double-write to the right loser's drop budget. Pre-spilled items
	// are deliberately NOT shadowed: they reach their (post-change) owner
	// exactly once via the re-routed spill replay.
	var shadowGroups map[shadowKey][]stream.Item
	if t.next != nil {
		shadowGroups = make(map[shadowKey][]stream.Item)
		for m, group := range groups {
			for _, it := range group {
				if g := t.shadowOwner(it.Src); g != nil {
					k := shadowKey{loser: m, gainer: g}
					shadowGroups[k] = append(shadowGroups[k], it)
				}
			}
		}
	}
	ctx, cancel := rt.reqCtx(r)
	defer cancel()
	var mu sync.Mutex
	var inserted int64
	var downMember string
	var downDropped int64
	var hardErr error
	var wg sync.WaitGroup
	for m, group := range groups {
		wg.Add(1)
		go func(m *member, group []stream.Item) {
			defer wg.Done()
			n, err := rt.forwardInsert(ctx, m, group)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if isTransport(err) {
					m.setErr(err)
					if !m.down.Swap(true) {
						rt.cfg.Logf("cluster: member %s down (insert failed): %v", m.primary, err)
					}
					// The member died under this very request; the group is
					// still in hand, so the spill can absorb it. Not during a
					// handoff window, though: the group's shadow copy may land
					// at the gainer, and a later replay would deliver it a
					// second time — counting it dropped fails the migration
					// instead (see below), which rolls back cleanly.
					if t.next == nil && m.spill != nil && m.spill.append(group) == nil {
						spilled += int64(len(group))
						return
					}
					downMember, downDropped = m.primary, downDropped+int64(len(group))
				} else if hardErr == nil {
					hardErr = err
				}
				return
			}
			inserted += n
		}(m, group)
	}
	wg.Wait()
	// Deliver the handoff double-writes. The shadow confirmations finish
	// before this handler releases the read fence, so the migration's
	// ledger is complete the instant the cutover takes the write side.
	// Shadow failures fail the MIGRATION (it rolls back), never the
	// client request — the serving owner already confirmed the items.
	for k, group := range shadowGroups {
		n, err := rt.forwardInsert(ctx, k.gainer, group)
		if n > 0 {
			t.mig.noteShadow(k.loser, k.gainer, n)
		}
		if err != nil {
			t.mig.fail(fmt.Errorf("handoff double-write to %s: %w", k.gainer.primary, err))
		} else if n != int64(len(group)) {
			t.mig.fail(fmt.Errorf("handoff double-write: %s confirmed %d of %d items",
				k.gainer.primary, n, len(group)))
		}
	}
	if t.next != nil && (downDropped > 0 || hardErr != nil) {
		t.mig.fail(fmt.Errorf("cluster: writes lost during handoff (member %s)", downMember))
	}
	if hardErr != nil {
		httpError(w, http.StatusBadGateway, "cluster: %v", hardErr)
		return
	}
	if downMember != "" {
		rt.retryAfter429(w, "inserted", inserted, spilled, downDropped, downMember)
		return
	}
	res := map[string]interface{}{"inserted": inserted, "members": len(groups)}
	if spilled > 0 {
		res["spilled"] = spilled
	}
	writeJSON(w, res)
}

// transportError wraps failures to reach a member at all, as opposed to
// a member answering with an error status.
type transportError struct{ err error }

func (e transportError) Error() string { return e.err.Error() }
func (e transportError) Unwrap() error { return e.err }

func isTransport(err error) bool {
	_, ok := err.(transportError)
	return ok
}

// forwardInsert posts one owner group to its member as a JSON array.
func (rt *Router) forwardInsert(ctx context.Context, m *member, group []stream.Item) (int64, error) {
	wires := make([]wireItem, len(group))
	for i, it := range group {
		wires[i] = wireItem{Src: it.Src, Dst: it.Dst, Weight: it.Weight,
			Time: it.Time, Label: it.Label}
	}
	body, err := json.Marshal(wires)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		m.primary+"/insert", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if id := telemetry.RequestID(ctx); id != "" {
		req.Header.Set(telemetry.HeaderRequestID, id)
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return 0, transportError{err}
	}
	defer resp.Body.Close()
	var res struct {
		Inserted int64 `json:"inserted"`
	}
	if resp.StatusCode != http.StatusOK {
		slurp, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("member %s /insert returned %d: %s",
			m.primary, resp.StatusCode, bytes.TrimSpace(slurp))
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return 0, err
	}
	return res.Inserted, nil
}

// maxIngestBatch bounds the per-request ?batch= override (the same cap
// internal/server enforces).
const maxIngestBatch = 1 << 16

// memberStream is one open NDJSON /ingest request to a member: raw
// item lines are written onto a pipe as they are routed, and the
// member decodes and inserts concurrently — one member round-trip per
// router request, however many items flow through it.
type memberStream struct {
	m    *member
	pw   *io.PipeWriter
	bw   *bufio.Writer
	sent int64 // items written to the pipe
	done chan ingestReply
}

// writeLine forwards one validated NDJSON line verbatim.
func (ms *memberStream) writeLine(raw []byte) error {
	if _, err := ms.bw.Write(raw); err != nil {
		return err
	}
	return ms.bw.WriteByte('\n')
}

type ingestReply struct {
	ingested int64
	err      error
}

// openStream starts the member-side /ingest request feeding from a
// pipe. The response is reported on done once the member replies (or
// the request fails).
func (rt *Router) openStream(ctx context.Context, m *member, batchSize int) *memberStream {
	// The write buffer absorbs roughly one member-side decode batch, so
	// the router keeps streaming while the member holds its insert lock
	// instead of stalling the connection on every batch boundary.
	pr, pw := io.Pipe()
	ms := &memberStream{m: m, pw: pw, bw: bufio.NewWriterSize(pw, 64<<10),
		done: make(chan ingestReply, 1)}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		m.primary+"/ingest?batch="+strconv.Itoa(batchSize), pr)
	if err != nil {
		// Tear the pipe too: with no request goroutine reading pr, a
		// later write (or the final flush) would otherwise block the
		// handler forever.
		pr.CloseWithError(err)
		ms.done <- ingestReply{err: err}
		return ms
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if id := telemetry.RequestID(ctx); id != "" {
		req.Header.Set(telemetry.HeaderRequestID, id)
	}
	go rt.postIngest(req, pr, m, ms.done)
	return ms
}

// postIngest issues one member-side /ingest request feeding from pr
// and reports the member's reply on done — the response half of a
// member stream, shared by the NDJSON and binary planes.
func (rt *Router) postIngest(req *http.Request, pr *io.PipeReader, m *member, done chan ingestReply) {
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		// Tear the pipe so the encoder side stops blocking; the
		// router counts this partition's items as unconfirmed.
		pr.CloseWithError(err)
		done <- ingestReply{err: transportError{err}}
		return
	}
	defer resp.Body.Close()
	var res struct {
		Ingested int64 `json:"ingested"`
	}
	if resp.StatusCode != http.StatusOK {
		slurp, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		pr.CloseWithError(fmt.Errorf("member status %d", resp.StatusCode))
		done <- ingestReply{err: fmt.Errorf("member %s /ingest returned %d: %s",
			m.primary, resp.StatusCode, bytes.TrimSpace(slurp))}
		return
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		done <- ingestReply{err: err}
		return
	}
	done <- ingestReply{ingested: res.Ingested}
}

// handleIngest streams a bulk body through the cluster. Content-Type
// selects the plane exactly as on a member: NDJSON (the default) is
// handled here, the GSB1 binary type in handleIngestBinary, anything
// else answers 415.
//
// On the NDJSON plane each line is routed by source-node owner onto
// one long-lived member /ingest request per partition, forwarded
// VERBATIM — the router pays only
// stream.ScanItemLine per item (extract src, prove the member's full
// decode will accept the line), not a decode plus re-encode, so the
// per-item router cost stays a fraction of the member's insert cost.
// Items bound for a down partition are absorbed into its spill log
// when one is configured (reported as "spilled" — delivered when the
// member recovers); otherwise they are counted dropped and the reply
// is 429 — mid-stream member failures downgrade the same way (the
// already-piped, unconfirmed prefix cannot be reconstructed for
// spilling), so a producer retries the whole upload after Retry-After;
// re-inserting the accepted prefix only adds weight the sketch
// semantics already tolerate (weights are cumulative observations),
// and exactly-once replay is what checkpoints are for.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	binary, ok := stream.IngestPlane(r.Header.Get("Content-Type"))
	if !ok {
		httpError(w, http.StatusUnsupportedMediaType,
			"unsupported Content-Type %q (want application/x-ndjson or %s)",
			r.Header.Get("Content-Type"), stream.ContentTypeBinary)
		return
	}
	batchSize := rt.cfg.BatchSize
	if raw := r.URL.Query().Get("batch"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > maxIngestBatch {
			httpError(w, http.StatusBadRequest, "batch must be an integer in [1,%d]", maxIngestBatch)
			return
		}
		batchSize = n
	}
	if binary {
		rt.handleIngestBinary(w, r, batchSize)
		return
	}
	ctx, cancel := rt.reqCtx(r)
	defer cancel()

	// One topology snapshot routes the whole upload, under the read
	// fence so a handoff/cutover never interleaves with it (the fence
	// also guarantees the shadow confirmations below are on the
	// migration's ledger before cutover can proceed).
	rt.topoMu.RLock()
	defer rt.topoMu.RUnlock()
	t := rt.topology()

	streams := make(map[*member]*memberStream, len(t.members))
	// Handoff double-writes ride dedicated per-gainer streams (never the
	// gainer's primary stream, whose confirmation count must stay
	// attributable to primary traffic), with per-(loser,gainer) counts
	// for the drop accounting.
	var shadowStreams map[*member]*memberStream
	var shadowSent map[shadowKey]int64
	if t.next != nil {
		shadowStreams = make(map[*member]*memberStream)
		shadowSent = make(map[shadowKey]int64)
	}
	// spillBuf batches a down partition's decoded items between spill
	// appends, so the fsync-per-append spill pays one sync per
	// batchSize items, not one per line.
	type spillBuf struct {
		items []stream.Item
		full  bool // budget hit: stop buffering, count the rest dropped
	}
	spillBufs := make(map[*member]*spillBuf)
	var spilled int64
	var dropped int64
	var downMember string
	var decodeErr error
	sc := stream.NewLineScanner(r.Body)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		src, _, err := stream.ScanItemLine(raw)
		if err != nil {
			decodeErr = err
			break
		}
		m := t.owner(src)
		ms := streams[m]
		if ms == nil {
			if m.down.Load() {
				if m.spill != nil {
					sb := spillBufs[m]
					if sb == nil {
						sb = &spillBuf{}
						spillBufs[m] = sb
					}
					if !sb.full {
						its, err := decodeInsertItems(raw)
						if err != nil {
							// ScanItemLine vouched for the line, so this is
							// a grammar corner the two decoders disagree on;
							// dropping just it keeps the request honest.
							dropped++
							downMember = m.primary
							continue
						}
						sb.items = append(sb.items, its...)
						if len(sb.items) >= batchSize {
							if err := m.spill.append(sb.items); err != nil {
								sb.full = true
								dropped += int64(len(sb.items))
								downMember = m.primary
							} else {
								spilled += int64(len(sb.items))
							}
							sb.items = sb.items[:0]
						}
						continue
					}
				}
				dropped++
				downMember = m.primary
				continue
			}
			ms = rt.openStream(ctx, m, batchSize)
			streams[m] = ms
		}
		if ms.pw == nil { // stream already failed mid-request
			dropped++
			continue
		}
		if err := ms.writeLine(raw); err != nil {
			// The member side tore the pipe: mark the partition down
			// and stop routing to it; its items count as dropped
			// because the member never confirmed them.
			ms.m.setErr(err)
			if !ms.m.down.Swap(true) {
				rt.cfg.Logf("cluster: member %s down (ingest failed): %v", ms.m.primary, err)
			}
			downMember = ms.m.primary
			dropped += ms.sent + 1
			ms.sent = 0
			ms.pw = nil
			continue
		}
		ms.sent++
		if g := t.shadowOwner(src); g != nil {
			ss := shadowStreams[g]
			if ss == nil {
				ss = rt.openStream(ctx, g, batchSize)
				shadowStreams[g] = ss
			}
			if ss.pw == nil {
				continue // shadow stream already failed; the migration is failing
			}
			if err := ss.writeLine(raw); err != nil {
				t.mig.fail(fmt.Errorf("handoff double-write to %s: %w", g.primary, err))
				ss.pw = nil
				continue
			}
			ss.sent++
			shadowSent[shadowKey{loser: m, gainer: g}]++
		}
	}
	if decodeErr == nil {
		decodeErr = sc.Err()
	}

	// Flush the partial spill buffers.
	for m, sb := range spillBufs {
		if len(sb.items) == 0 {
			continue
		}
		if err := m.spill.append(sb.items); err != nil {
			dropped += int64(len(sb.items))
			downMember = m.primary
		} else {
			spilled += int64(len(sb.items))
		}
	}

	// Flush and close every stream, then collect the member replies.
	var ingested int64
	var hardErr error
	for _, ms := range streams {
		if ms.pw != nil {
			if err := ms.bw.Flush(); err == nil {
				ms.pw.Close()
			} else {
				ms.pw.CloseWithError(err)
			}
		}
		reply := <-ms.done
		switch {
		case reply.err == nil:
			ingested += reply.ingested
			// Unconfirmed tail (pipe torn mid-write): whatever the
			// member did not acknowledge counts dropped.
			if ms.pw != nil && reply.ingested < ms.sent {
				dropped += ms.sent - reply.ingested
				downMember = ms.m.primary
			}
		case isTransport(reply.err):
			ms.m.setErr(reply.err)
			if !ms.m.down.Swap(true) {
				rt.cfg.Logf("cluster: member %s down (ingest failed): %v", ms.m.primary, reply.err)
			}
			downMember = ms.m.primary
			dropped += ms.sent
		default:
			if hardErr == nil {
				hardErr = reply.err
			}
		}
	}

	// Settle the handoff double-writes. Anything but a full confirmation
	// fails the MIGRATION (the serving owners already confirmed the
	// primary copies, so the client response is unaffected).
	for g, ss := range shadowStreams {
		if ss.pw != nil {
			if err := ss.bw.Flush(); err == nil {
				ss.pw.Close()
			} else {
				ss.pw.CloseWithError(err)
			}
		}
		reply := <-ss.done
		if reply.err != nil || ss.pw == nil || reply.ingested != ss.sent {
			err := reply.err
			if err == nil {
				err = fmt.Errorf("confirmed %d of %d items", reply.ingested, ss.sent)
			}
			t.mig.fail(fmt.Errorf("handoff double-write to %s: %w", g.primary, err))
			continue
		}
		for k, n := range shadowSent {
			if k.gainer == g {
				t.mig.noteShadow(k.loser, k.gainer, n)
			}
		}
	}
	if t.next != nil && (dropped > 0 || hardErr != nil) {
		t.mig.fail(fmt.Errorf("cluster: writes lost during handoff (member %s)", downMember))
	}

	switch {
	case hardErr != nil:
		httpError(w, http.StatusBadGateway, "cluster: %v", hardErr)
	case decodeErr != nil:
		httpError(w, http.StatusBadRequest, "line %d: %v (%d items accepted)",
			lineNo, decodeErr, ingested)
	case dropped > 0 || downMember != "":
		rt.retryAfter429(w, "ingested", ingested, spilled, dropped, downMember)
	default:
		res := map[string]interface{}{
			"mode": "cluster", "ingested": ingested, "members": len(streams)}
		if spilled > 0 {
			res["spilled"] = spilled
		}
		writeJSON(w, res)
	}
}
