package cluster

import (
	"strconv"
	"testing"
)

func ringURLs(n int) []string {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = "http://member-" + strconv.Itoa(i) + ":8080"
	}
	return urls
}

func TestNewRingErrors(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := NewRing([]string{"http://a", ""}); err == nil {
		t.Fatal("empty member URL accepted")
	}
	if _, err := NewRing([]string{"http://a:1", "http://a:1/"}); err == nil {
		t.Fatal("duplicate member (modulo trailing slash) accepted")
	}
}

func TestRingNormalizesMembers(t *testing.T) {
	r, err := NewRing([]string{" http://a:1/ ", "http://b:2"})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Member(0); got != "http://a:1" {
		t.Fatalf("member 0 = %q, want trimmed URL", got)
	}
}

// TestRingDeterministic: ownership is a pure function of (key, member
// set) — two rings over the same members route identically.
func TestRingDeterministic(t *testing.T) {
	a, _ := NewRing(ringURLs(5))
	b, _ := NewRing(ringURLs(5))
	for i := 0; i < 1000; i++ {
		key := "node-" + strconv.Itoa(i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings disagree on %q: %d vs %d", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingDistribution: rendezvous hashing spreads keys roughly evenly;
// no member may be starved or hot far beyond its fair share.
func TestRingDistribution(t *testing.T) {
	const keys = 20000
	for _, n := range []int{1, 2, 3, 4, 8} {
		r, err := NewRing(ringURLs(n))
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n)
		for i := 0; i < keys; i++ {
			counts[r.Owner("node-"+strconv.Itoa(i))]++
		}
		fair := keys / n
		for i, c := range counts {
			if c < fair/2 || c > fair*2 {
				t.Fatalf("%d members: member %d owns %d of %d keys (fair share %d)",
					n, i, c, keys, fair)
			}
		}
	}
}

// TestRingMinimalDisruption: removing one member only re-maps the keys
// it owned — every key owned by a surviving member keeps its owner.
// This is the rendezvous property a future migration story builds on.
func TestRingMinimalDisruption(t *testing.T) {
	urls := ringURLs(4)
	full, _ := NewRing(urls)
	reduced, _ := NewRing(urls[:3]) // member 3 removed
	for i := 0; i < 5000; i++ {
		key := "node-" + strconv.Itoa(i)
		before := full.Owner(key)
		if before == 3 {
			continue // re-mapped by design
		}
		if after := reduced.Owner(key); after != before {
			t.Fatalf("key %q moved from surviving member %d to %d", key, before, after)
		}
	}
}
