package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Binary ingest plane. A GSB1 body is routed at the frame layer: the
// router reads one frame at a time, walks its records with
// stream.ScanHashedRecord — which yields the carried H(src) routing
// key and structurally vouches for the bytes without materializing an
// identifier string or hashing anything — and re-frames each record
// VERBATIM onto its owner's member stream. The member's full decoder
// sees frames indistinguishable from producer-written ones, and the
// hashes computed once at the producer carry through router, member,
// shard and matrix untouched. Down partitions spill the records' GSS1
// payload bytes straight into the spill log (oplog.AppendEncoded — no
// decode/re-encode); spill replay then delivers them like any other
// spilled item.

// memberBinStream is one open binary /ingest request to a member:
// validated records accumulate into an owner-local frame that is
// emitted every batchSize records, so the member decodes the same
// batch granularity the NDJSON plane would have given it.
type memberBinStream struct {
	m    *member
	pw   *io.PipeWriter
	bw   *bufio.Writer
	hdr  []byte // frame-header scratch
	body []byte // records of the open frame
	n    int    // records in the open frame
	sent int64  // records written to this stream
	done chan ingestReply
}

// writeRecord appends one validated record to the open frame, flushing
// the frame at the batch boundary.
func (ms *memberBinStream) writeRecord(rec []byte, batchSize int) error {
	ms.body = append(ms.body, rec...)
	ms.n++
	ms.sent++
	if ms.n >= batchSize {
		return ms.flushFrame()
	}
	return nil
}

// flushFrame emits the open frame — header plus the verbatim record
// bytes, identical to a stream.BinaryBatchWriter frame.
func (ms *memberBinStream) flushFrame() error {
	if ms.n == 0 {
		return nil
	}
	ms.hdr = stream.AppendFrameHeader(ms.hdr[:0], ms.n, len(ms.body))
	if _, err := ms.bw.Write(ms.hdr); err != nil {
		return err
	}
	if _, err := ms.bw.Write(ms.body); err != nil {
		return err
	}
	ms.body, ms.n = ms.body[:0], 0
	return nil
}

// openBinStream starts the member-side binary /ingest request feeding
// from a pipe, mirroring openStream on the NDJSON plane.
func (rt *Router) openBinStream(ctx context.Context, m *member, batchSize int) *memberBinStream {
	pr, pw := io.Pipe()
	ms := &memberBinStream{m: m, pw: pw, bw: bufio.NewWriterSize(pw, 64<<10),
		done: make(chan ingestReply, 1)}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		m.primary+"/ingest?batch="+strconv.Itoa(batchSize), pr)
	if err != nil {
		pr.CloseWithError(err)
		ms.done <- ingestReply{err: err}
		return ms
	}
	req.Header.Set("Content-Type", stream.ContentTypeBinary)
	if id := telemetry.RequestID(ctx); id != "" {
		req.Header.Set(telemetry.HeaderRequestID, id)
	}
	magic := stream.BinaryMagic()
	_, _ = ms.bw.Write(magic[:]) // buffered; a dead pipe surfaces at the first flush
	go rt.postIngest(req, pr, m, ms.done)
	return ms
}

// handleIngestBinary routes a GSB1 body by the carried source hashes.
// Accounting, spill behavior and the response table mirror the NDJSON
// plane exactly; the only difference is the unit of work (a validated
// record instead of a scanned line) and that down-partition records
// spill their already-encoded payload bytes.
func (rt *Router) handleIngestBinary(w http.ResponseWriter, r *http.Request, batchSize int) {
	ctx, cancel := rt.reqCtx(r)
	defer cancel()

	// Same topology discipline as the NDJSON plane: one snapshot under
	// the read fence routes the whole upload, and handoff double-writes
	// ride dedicated per-gainer streams (see handleIngest).
	rt.topoMu.RLock()
	defer rt.topoMu.RUnlock()
	t := rt.topology()

	streams := make(map[*member]*memberBinStream, len(t.members))
	var shadowStreams map[*member]*memberBinStream
	var shadowSent map[shadowKey]int64
	if t.next != nil {
		shadowStreams = make(map[*member]*memberBinStream)
		shadowSent = make(map[shadowKey]int64)
	}
	// spillBuf batches a down partition's record payloads between spill
	// appends — one fsync per batchSize records, not one per record.
	// The payloads are copied out of the reused frame buffer.
	type spillBuf struct {
		payloads [][]byte
		full     bool // budget hit: stop buffering, count the rest dropped
	}
	spillBufs := make(map[*member]*spillBuf)
	var spilled int64
	var dropped int64
	var downMember string
	var decodeErr error
	fr := stream.NewFrameReader(r.Body)
	// Every record is either copied onto a member frame or into a spill
	// buffer before the next frame loads, so the frame buffer can be
	// recycled for the whole request.
	fr.SetReuse(true)
	var ingested int64
	var hardErr error
	for decodeErr == nil {
		records, count := fr.Next()
		if records == nil {
			break
		}
		pos := 0
		for i := 0; i < count; i++ {
			hsrc, n, err := stream.ScanHashedRecord(records[pos:])
			if err != nil {
				decodeErr = fmt.Errorf("frame %d record %d: %v", fr.Frames(), i+1, err)
				break
			}
			rec := records[pos : pos+n]
			pos += n
			m := t.ownerHash(hsrc)
			ms := streams[m]
			if ms == nil {
				if m.down.Load() {
					if m.spill != nil {
						sb := spillBufs[m]
						if sb == nil {
							sb = &spillBuf{}
							spillBufs[m] = sb
						}
						if !sb.full {
							sb.payloads = append(sb.payloads,
								append([]byte(nil), stream.HashedRecordPayload(rec)...))
							if len(sb.payloads) >= batchSize {
								if err := m.spill.appendEncoded(sb.payloads); err != nil {
									sb.full = true
									dropped += int64(len(sb.payloads))
									downMember = m.primary
								} else {
									spilled += int64(len(sb.payloads))
								}
								sb.payloads = sb.payloads[:0]
							}
							continue
						}
					}
					dropped++
					downMember = m.primary
					continue
				}
				ms = rt.openBinStream(ctx, m, batchSize)
				streams[m] = ms
			}
			if ms.pw == nil { // stream already failed mid-request
				dropped++
				continue
			}
			if err := ms.writeRecord(rec, batchSize); err != nil {
				// The member side tore the pipe: mark the partition down
				// and stop routing to it; every record it has not
				// confirmed counts dropped.
				ms.m.setErr(err)
				if !ms.m.down.Swap(true) {
					rt.cfg.Logf("cluster: member %s down (ingest failed): %v", ms.m.primary, err)
				}
				downMember = ms.m.primary
				dropped += ms.sent
				ms.sent = 0
				ms.pw = nil
				continue
			}
			if g := t.shadowOwnerHash(hsrc); g != nil {
				ss := shadowStreams[g]
				if ss == nil {
					ss = rt.openBinStream(ctx, g, batchSize)
					shadowStreams[g] = ss
				}
				if ss.pw == nil {
					continue // shadow stream already failed; the migration is failing
				}
				if err := ss.writeRecord(rec, batchSize); err != nil {
					t.mig.fail(fmt.Errorf("handoff double-write to %s: %w", g.primary, err))
					ss.pw = nil
					continue
				}
				shadowSent[shadowKey{loser: m, gainer: g}]++
			}
		}
		if decodeErr == nil && pos != len(records) {
			decodeErr = fmt.Errorf("frame %d holds %d bytes past its %d records",
				fr.Frames(), len(records)-pos, count)
		}
	}
	if decodeErr == nil {
		if err := fr.Err(); err != nil {
			decodeErr = fmt.Errorf("frame %d: %v", fr.Frames()+1, err)
		}
	}

	// Flush the partial spill buffers.
	for m, sb := range spillBufs {
		if len(sb.payloads) == 0 {
			continue
		}
		if err := m.spill.appendEncoded(sb.payloads); err != nil {
			dropped += int64(len(sb.payloads))
			downMember = m.primary
		} else {
			spilled += int64(len(sb.payloads))
		}
	}

	// Flush and close every stream, then collect the member replies.
	for _, ms := range streams {
		if ms.pw != nil {
			err := ms.flushFrame()
			if err == nil {
				err = ms.bw.Flush()
			}
			if err == nil {
				ms.pw.Close()
			} else {
				ms.pw.CloseWithError(err)
			}
		}
		reply := <-ms.done
		switch {
		case reply.err == nil:
			ingested += reply.ingested
			// Unconfirmed tail (pipe torn mid-write): whatever the
			// member did not acknowledge counts dropped.
			if ms.pw != nil && reply.ingested < ms.sent {
				dropped += ms.sent - reply.ingested
				downMember = ms.m.primary
			}
		case isTransport(reply.err):
			ms.m.setErr(reply.err)
			if !ms.m.down.Swap(true) {
				rt.cfg.Logf("cluster: member %s down (ingest failed): %v", ms.m.primary, reply.err)
			}
			downMember = ms.m.primary
			dropped += ms.sent
		default:
			if hardErr == nil {
				hardErr = reply.err
			}
		}
	}

	// Settle the handoff double-writes (migration-fatal on anything but
	// full confirmation; the client response is unaffected).
	for g, ss := range shadowStreams {
		if ss.pw != nil {
			err := ss.flushFrame()
			if err == nil {
				err = ss.bw.Flush()
			}
			if err == nil {
				ss.pw.Close()
			} else {
				ss.pw.CloseWithError(err)
			}
		}
		reply := <-ss.done
		if reply.err != nil || ss.pw == nil || reply.ingested != ss.sent {
			err := reply.err
			if err == nil {
				err = fmt.Errorf("confirmed %d of %d items", reply.ingested, ss.sent)
			}
			t.mig.fail(fmt.Errorf("handoff double-write to %s: %w", g.primary, err))
			continue
		}
		for k, n := range shadowSent {
			if k.gainer == g {
				t.mig.noteShadow(k.loser, k.gainer, n)
			}
		}
	}
	if t.next != nil && (dropped > 0 || hardErr != nil) {
		t.mig.fail(fmt.Errorf("cluster: writes lost during handoff (member %s)", downMember))
	}

	switch {
	case hardErr != nil:
		httpError(w, http.StatusBadGateway, "cluster: %v", hardErr)
	case decodeErr != nil:
		httpError(w, http.StatusBadRequest, "%v (%d items accepted)", decodeErr, ingested)
	case dropped > 0 || downMember != "":
		rt.retryAfter429(w, "ingested", ingested, spilled, dropped, downMember)
	default:
		res := map[string]interface{}{
			"mode": "cluster", "ingested": ingested, "members": len(streams)}
		if spilled > 0 {
			res["spilled"] = spilled
		}
		writeJSON(w, res)
	}
}
