package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stream"
)

// Live partition migration. A membership change (add a member, drain
// one) re-maps exactly the keys whose rendezvous winner changes between
// the old and new member lists; the migrator moves those partitions
// while the cluster keeps serving:
//
//  1. copy      — each losing member streams its moving edges
//                 (GET /partition/export, fenced by X-Log-Seq) and the
//                 router forwards them to their new owners.
//  2. catchup   — the router tails each loser's operation log from the
//                 export fence, forwarding the moving items, until the
//                 lag is one batch.
//  3. handoff   — under the topology write fence (Router.topoMu) a
//                 two-ring topology goes live: every write to a moving
//                 key now reaches BOTH its old and its new owner
//                 (inserts are commutative weight accumulation, so the
//                 double delivery is sound), and each loser's log end
//                 is captured with no write in flight.
//  4. drain     — the remaining log window (cursor, end] is relayed;
//                 anything after end was double-written, so the two
//                 sources of items at the gainer never overlap.
//  5. cutover   — under the write fence again: the per-loser drop
//                 budget (forwarded + double-written items) is final,
//                 the journal commits, and the new single-ring topology
//                 is installed with one pointer swap.
//  6. drop      — (add mode) each loser drops its moved edges and
//                 subtracts the budget, so cluster-wide counts return
//                 to exactly the single-node totals. A drained member
//                 simply leaves the topology at cutover.
//
// Any failure before cutover rolls back: the handoff (if live) is
// deactivated and the gainers are scrubbed of the transferred state —
// a joining member is dropped down to empty using its own item count,
// a pre-existing gainer by the router's confirmed-forward ledger. After
// cutover the change only rolls forward. With Config.StateDir set the
// journal makes both directions survive a router restart.

// errMigrationActive answers a membership change attempted while one is
// already in flight.
var errMigrationActive = errors.New("cluster: a membership change is already in flight")

// maxLogFetch bounds one catch-up /log fetch (the server's own default
// page size).
const maxLogFetch = 8192

// catchUpFetch is the catch-up page size — a variable so tests can
// shrink it below a writer's sustainable rate and force the
// stalled-catch-up handover deterministically.
var catchUpFetch = maxLogFetch

// migRetryDelay paces rollback/drop retries against a member that is
// temporarily unreachable.
const migRetryDelay = 250 * time.Millisecond

// migration is one in-flight membership change.
type migration struct {
	mode   string // "add" | "drain"
	target string // normalized URL of the member joining or leaving

	old, new               *Ring
	oldMembers, newMembers []*member // aligned with old / new
	losers                 []*member // members whose key set shrinks
	gainers                []*member // members whose key set grows

	started       time.Time
	targetVersion int64 // ring version the change builds

	mu       sync.Mutex
	phase    string
	outcome  string // "" while running, then "done" | "failed"
	err      error
	cursors  map[string]uint64 // per-loser log cursor (catch-up progress)
	dropMap  map[string]int64  // per-loser drop budget, fixed at cutover
	dropped  map[string]bool   // per-loser drop completion (journal)
	scrubbed map[string]bool   // per-gainer rollback-scrub completion (journal)
	duration time.Duration     // fixed once finished

	// Drain-mode counter rebase: the export aggregates the departing
	// member's items into one weighted item per edge, so the gainers'
	// item counters under-count by (fenced items − exported edges).
	// That delta is computed at copy time, assigned a surviving gainer
	// at cutover, and delivered via /partition/absorb afterwards so the
	// cluster-total Stats().Items stays exactly the ingested item count.
	absorbItems  int64  // the delta owed
	absorbTarget string // the gainer rebasing it, fixed at cutover
	absorbed     bool   // delivered (journaled)

	lossFwd map[string]*atomic.Int64 // per loser: migrated items its gainers confirmed
	shadow  map[string]*atomic.Int64 // per loser: handoff double-writes its gainers confirmed
	gainFwd map[string]*atomic.Int64 // per gainer: items it confirmed (the rollback budget)

	movedEdges   atomic.Int64
	movedBytes   atomic.Int64
	handoffStall atomic.Int64 // ns the handoff fence held writes
	cutoverStall atomic.Int64 // ns the cutover fence held writes

	done chan struct{}
}

// MigrationStatus is the migration block of /cluster/stats (and the
// ?wait=1 response of the admin endpoints).
type MigrationStatus struct {
	Mode           string            `json:"mode"`
	Target         string            `json:"target"`
	Phase          string            `json:"phase"`
	Outcome        string            `json:"outcome,omitempty"` // "done" | "failed" once finished
	Error          string            `json:"error,omitempty"`
	RingVersion    int64             `json:"ring_version"` // the version the change builds
	OldMembers     []string          `json:"old_members"`
	NewMembers     []string          `json:"new_members"`
	MovedEdges     int64             `json:"moved_edges"`
	MovedBytes     int64             `json:"moved_bytes"`
	ForwardedItems int64             `json:"forwarded_items"`        // copy + catch-up + drain
	ShadowItems    int64             `json:"shadow_items"`           // handoff double-writes
	AbsorbItems    int64             `json:"absorb_items,omitempty"` // drain counter rebase
	CaughtUpSeq    map[string]uint64 `json:"caught_up_seq,omitempty"`
	HandoffStallMS float64           `json:"handoff_stall_ms"`
	CutoverStallMS float64           `json:"cutover_stall_ms"`
	DurationMS     float64           `json:"duration_ms"`
}

// moving reports whether key's owner changes between the two rings.
// Owners are compared by URL, which is ordering-robust even though the
// two member lists share most entries.
func (mg *migration) moving(key string) bool {
	return mg.old.Member(mg.old.Owner(key)) != mg.new.Member(mg.new.Owner(key))
}

// newOwner returns the member owning key under the new ring.
func (mg *migration) newOwner(key string) *member {
	return mg.newMembers[mg.new.Owner(key)]
}

// listsQuery renders the ?old=&new= query both partition endpoints and
// the server-side predicate share.
func (mg *migration) listsQuery() string {
	return "?old=" + url.QueryEscape(strings.Join(mg.old.Members(), ",")) +
		"&new=" + url.QueryEscape(strings.Join(mg.new.Members(), ","))
}

func (mg *migration) setPhase(p string) {
	mg.mu.Lock()
	mg.phase = p
	mg.mu.Unlock()
}

func (mg *migration) phaseName() string {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	return mg.phase
}

// fail records the first fatal error; the migrator checks it between
// steps (write handlers report shadow-write failures this way).
func (mg *migration) fail(err error) {
	mg.mu.Lock()
	if mg.err == nil {
		mg.err = err
	}
	mg.mu.Unlock()
}

func (mg *migration) failedErr() error {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	return mg.err
}

func (mg *migration) setCursor(m *member, seq uint64) {
	mg.mu.Lock()
	mg.cursors[m.primary] = seq
	mg.mu.Unlock()
}

func (mg *migration) cursor(m *member) uint64 {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	return mg.cursors[m.primary]
}

// noteShadow credits one confirmed handoff double-write batch: the
// loser's drop budget grows (the gainer now holds n items the loser
// also counted) and the gainer's rollback budget grows.
func (mg *migration) noteShadow(loser, gainer *member, n int64) {
	mg.shadow[loser.primary].Add(n)
	mg.gainFwd[gainer.primary].Add(n)
}

// roleOf names m's part in the change for /cluster/stats.
func (mg *migration) roleOf(m *member) string {
	for _, l := range mg.losers {
		if l == m {
			return "source"
		}
	}
	for _, g := range mg.gainers {
		if g == m {
			return "destination"
		}
	}
	return ""
}

func (mg *migration) finish(outcome string, cause error) {
	mg.mu.Lock()
	mg.outcome = outcome
	if mg.err == nil {
		mg.err = cause
	}
	mg.duration = time.Since(mg.started)
	mg.mu.Unlock()
}

func (mg *migration) status() MigrationStatus {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	st := MigrationStatus{
		Mode: mg.mode, Target: mg.target, Phase: mg.phase, Outcome: mg.outcome,
		RingVersion: mg.targetVersion,
		OldMembers:  mg.old.Members(), NewMembers: mg.new.Members(),
		MovedEdges: mg.movedEdges.Load(), MovedBytes: mg.movedBytes.Load(),
		AbsorbItems:    mg.absorbItems,
		HandoffStallMS: float64(mg.handoffStall.Load()) / 1e6,
		CutoverStallMS: float64(mg.cutoverStall.Load()) / 1e6,
	}
	if mg.err != nil {
		st.Error = mg.err.Error()
	}
	if mg.duration > 0 {
		st.DurationMS = float64(mg.duration) / 1e6
	} else {
		st.DurationMS = float64(time.Since(mg.started)) / 1e6
	}
	for _, c := range mg.lossFwd {
		st.ForwardedItems += c.Load()
	}
	for _, c := range mg.shadow {
		st.ShadowItems += c.Load()
	}
	if len(mg.cursors) > 0 {
		st.CaughtUpSeq = make(map[string]uint64, len(mg.cursors))
		for k, v := range mg.cursors {
			st.CaughtUpSeq[k] = v
		}
	}
	return st
}

// migrating reports whether a membership change is in flight (spill
// replay pauses while one is).
func (rt *Router) migrating() bool {
	rt.migMu.Lock()
	defer rt.migMu.Unlock()
	return rt.mig != nil
}

// --- admin endpoints ---

// handleMemberAdd (POST /cluster/members {"url": ...}) adds a member by
// live-migrating its partitions in. ?wait=1 blocks until the change
// finishes and answers with its final MigrationStatus; otherwise 202 is
// immediate and /cluster/stats tracks progress.
func (rt *Router) handleMemberAdd(w http.ResponseWriter, r *http.Request) {
	rt.handleMembership(w, r, "add")
}

// handleMemberDrain (POST /cluster/drain {"url": ...}) removes a member
// by live-migrating its partitions out. Same ?wait=1 contract as add.
func (rt *Router) handleMemberDrain(w http.ResponseWriter, r *http.Request) {
	rt.handleMembership(w, r, "drain")
}

func (rt *Router) handleMembership(w http.ResponseWriter, r *http.Request, mode string) {
	if !rt.cfg.AllowMembershipChanges {
		httpError(w, http.StatusForbidden,
			"membership changes are disabled (start the router with -allow-membership-changes)")
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return
	}
	if req.URL == "" {
		httpError(w, http.StatusBadRequest, "url is required")
		return
	}
	mg, err := rt.beginMigration(mode, req.URL)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errMigrationActive) {
			code = http.StatusConflict
		}
		httpError(w, code, "%v", err)
		return
	}
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		rt.runMigration(mg)
	}()
	if r.URL.Query().Get("wait") != "1" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(map[string]interface{}{
			"status": "migrating", "mode": mode, "target": mg.target,
		})
		return
	}
	select {
	case <-mg.done:
	case <-rt.ctx.Done():
		httpError(w, http.StatusServiceUnavailable, "router closing")
		return
	case <-r.Context().Done():
		return
	}
	st := mg.status()
	w.Header().Set("Content-Type", "application/json")
	if st.Outcome != "done" {
		w.WriteHeader(http.StatusInternalServerError)
	}
	_ = json.NewEncoder(w).Encode(st)
}

// beginMigration validates the change, registers it as THE in-flight
// migration, and preflights the cluster: every involved member healthy,
// no spilled writes pending (a pending spill would replay into a moving
// partition mid-copy and break the accounting).
func (rt *Router) beginMigration(mode, rawURL string) (*migration, error) {
	target := NormalizeMember(rawURL)
	if target == "" {
		return nil, errors.New("url is required")
	}
	t := rt.topology()
	var newList []string
	switch mode {
	case "add":
		if t.ring.Index(target) >= 0 {
			return nil, fmt.Errorf("%s is already a member", target)
		}
		newList = append(t.ring.Members(), target)
	case "drain":
		if t.ring.Index(target) < 0 {
			return nil, fmt.Errorf("%s is not a member", target)
		}
		if t.ring.Size() == 1 {
			return nil, errors.New("cannot drain the last member")
		}
		for _, m := range t.ring.Members() {
			if m != target {
				newList = append(newList, m)
			}
		}
	default:
		return nil, fmt.Errorf("unknown migration mode %q", mode)
	}
	newRing, err := NewRing(newList)
	if err != nil {
		return nil, err
	}
	mg := &migration{
		mode: mode, target: target,
		old: t.ring, new: newRing,
		oldMembers:    t.members,
		started:       time.Now(),
		targetVersion: t.version + 1,
		phase:         "preflight",
		cursors:       make(map[string]uint64),
		dropped:       make(map[string]bool),
		scrubbed:      make(map[string]bool),
		done:          make(chan struct{}),
	}
	mg.newMembers = make([]*member, newRing.Size())
	for i := 0; i < newRing.Size(); i++ {
		mg.newMembers[i], err = rt.memberFor(newRing.Member(i))
		if err != nil {
			return nil, err
		}
	}
	switch mode {
	case "add":
		mg.losers = mg.oldMembers
		mg.gainers = []*member{rt.lookupMember(target)}
	case "drain":
		mg.losers = []*member{rt.lookupMember(target)}
		mg.gainers = mg.newMembers
	}
	mg.lossFwd = make(map[string]*atomic.Int64, len(mg.losers))
	mg.shadow = make(map[string]*atomic.Int64, len(mg.losers))
	for _, l := range mg.losers {
		mg.lossFwd[l.primary] = new(atomic.Int64)
		mg.shadow[l.primary] = new(atomic.Int64)
	}
	mg.gainFwd = make(map[string]*atomic.Int64, len(mg.gainers))
	for _, g := range mg.gainers {
		mg.gainFwd[g.primary] = new(atomic.Int64)
	}

	// Register before preflighting, so no spill replay can start between
	// the checks and the copy phase.
	rt.migMu.Lock()
	if rt.mig != nil {
		rt.migMu.Unlock()
		return nil, errMigrationActive
	}
	rt.mig = mg
	rt.migMu.Unlock()
	abandon := func(err error) (*migration, error) {
		rt.migMu.Lock()
		rt.mig = nil
		rt.migMu.Unlock()
		return nil, err
	}

	if mode == "add" {
		// A joining member has never been probed: one synchronous health
		// check fails a bogus URL fast.
		ctx, cancel := context.WithTimeout(rt.ctx, rt.cfg.ProbeTimeout)
		hz, err := rt.fetchHealthz(ctx, target)
		cancel()
		if err != nil {
			return abandon(fmt.Errorf("new member %s is not healthy: %v", target, err))
		}
		if hz.Role == "follower" {
			return abandon(fmt.Errorf("new member %s is a follower (it rejects writes)", target))
		}
		mg.gainers[0].down.Store(false)
	}
	for _, m := range mg.oldMembers {
		if m.down.Load() {
			return abandon(fmt.Errorf("member %s is down; heal the cluster before changing membership", m.primary))
		}
		if m.spill != nil && (m.spill.pendingItems() > 0 || m.spill.replaying.Load()) {
			return abandon(fmt.Errorf("member %s has spilled writes pending replay; wait for the drain", m.primary))
		}
	}
	return mg, nil
}

// runMigration drives the phases. Every pre-cutover failure lands in
// rollbackMigration; after the journal commits at cutover the change
// only rolls forward.
func (rt *Router) runMigration(mg *migration) {
	mg.setPhase("copy")
	if err := rt.saveJournal(mg); err != nil {
		rt.rollbackMigration(mg, err)
		return
	}
	for _, loser := range mg.losers {
		cursor, fencedItems, err := rt.copyPartition(mg, loser)
		if err != nil {
			rt.rollbackMigration(mg, err)
			return
		}
		mg.setCursor(loser, cursor)
		if mg.mode == "drain" {
			// All of a draining member's keys move, so its fenced item
			// count IS the moving item count; what the copy forwarded is
			// the (aggregated) edge count. The difference is owed to a
			// gainer after cutover (catch-up, drain and shadow items are
			// forwarded one-for-one and need no rebase).
			if delta := fencedItems - mg.lossFwd[loser.primary].Load(); delta > 0 {
				mg.mu.Lock()
				mg.absorbItems += delta
				mg.mu.Unlock()
			}
		}
	}
	mg.setPhase("catchup")
	_ = rt.saveJournal(mg)
	for _, loser := range mg.losers {
		if err := rt.catchUp(mg, loser); err != nil {
			rt.rollbackMigration(mg, err)
			return
		}
	}
	mg.setPhase("handoff")
	_ = rt.saveJournal(mg)
	fence, err := rt.activateHandoff(mg)
	if err != nil {
		rt.rollbackMigration(mg, err)
		return
	}
	for _, loser := range mg.losers {
		if err := rt.drainTo(mg, loser, fence[loser.primary]); err != nil {
			rt.rollbackMigration(mg, err)
			return
		}
	}
	if err := rt.cutover(mg); err != nil {
		rt.rollbackMigration(mg, err)
		return
	}
	if mg.mode == "add" {
		rt.dropAtLosers(mg)
	} else {
		rt.absorbAtGainer(mg)
	}
	if rt.ctx.Err() != nil {
		return // Close mid-drop/absorb: the journal resumes it on restart
	}
	rt.finalizeMigration(mg)
}

// countingReader counts transfer bytes for the migration stats.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// copyPartition streams loser's moving edges to their new owners. It
// returns the log cursor fencing the export body and the loser's whole
// item count at that fence (X-Partition-Items — the drain-mode rebase
// input; see migration.absorbItems).
func (rt *Router) copyPartition(mg *migration, loser *member) (uint64, int64, error) {
	resp, err := rt.get(rt.ctx, loser.primary+"/partition/export"+mg.listsQuery())
	if err != nil {
		return 0, 0, fmt.Errorf("exporting partition from %s: %w", loser.primary, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		slurp, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, 0, fmt.Errorf("partition export from %s: status %d: %s",
			loser.primary, resp.StatusCode, bytes.TrimSpace(slurp))
	}
	seqRaw := resp.Header.Get("X-Log-Seq")
	if seqRaw == "" {
		return 0, 0, fmt.Errorf("member %s keeps no operation log; live migration needs one to fence the copy (start members with -log-dir)", loser.primary)
	}
	cursor, err := strconv.ParseUint(seqRaw, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("partition export from %s: bad X-Log-Seq: %v", loser.primary, err)
	}
	fencedItems, _ := strconv.ParseInt(resp.Header.Get("X-Partition-Items"), 10, 64)
	cr := &countingReader{r: resp.Body}
	sr := stream.NewReader(cr)
	batches := make(map[*member][]stream.Item)
	flush := func(g *member) error {
		if len(batches[g]) == 0 {
			return nil
		}
		if err := rt.forwardMigrated(mg, loser, g, batches[g]); err != nil {
			return err
		}
		batches[g] = batches[g][:0]
		return nil
	}
	for {
		it, ok := sr.Next()
		if !ok {
			break
		}
		g := mg.newOwner(it.Src)
		batches[g] = append(batches[g], it)
		mg.movedEdges.Add(1)
		if len(batches[g]) >= rt.cfg.BatchSize {
			if err := flush(g); err != nil {
				return 0, 0, err
			}
		}
	}
	if err := sr.Err(); err != nil {
		return 0, 0, fmt.Errorf("partition export stream from %s: %w", loser.primary, err)
	}
	for g := range batches {
		if err := flush(g); err != nil {
			return 0, 0, err
		}
	}
	mg.movedBytes.Add(cr.n)
	return cursor, fencedItems, nil
}

// forwardMigrated delivers one migrated batch to a gainer and books the
// confirmation on both ledgers. Anything but full confirmation is fatal
// to the migration — the accounting would drift otherwise.
func (rt *Router) forwardMigrated(mg *migration, loser, gainer *member, batch []stream.Item) error {
	n, err := rt.forwardInsert(rt.ctx, gainer, batch)
	if n > 0 {
		mg.lossFwd[loser.primary].Add(n)
		mg.gainFwd[gainer.primary].Add(n)
	}
	if err != nil {
		return fmt.Errorf("forwarding migrated items to %s: %w", gainer.primary, err)
	}
	if n != int64(len(batch)) {
		return fmt.Errorf("member %s confirmed %d of %d migrated items", gainer.primary, n, len(batch))
	}
	return nil
}

// catchUp tails loser's log from the copy fence until the lag is at
// most one batch; the fenced drain after handoff closes the rest.
//
// Under saturated ingest the log can grow as fast as the relay drains
// it, so "lag ≤ one batch" may never arrive. Chasing further buys
// nothing then: catch-up only exists to shrink the window the fenced
// drain must relay, and once the lag stops shrinking the window is as
// small as it will get — the handoff fence bounds it and double-writes
// cover everything after the fence, so handing over early is safe,
// just a longer drain.
func (rt *Router) catchUp(mg *migration, loser *member) error {
	const maxRounds = 10000
	const maxStalledRounds = 3
	lastLag, stalled := ^uint64(0), 0
	for round := 0; ; round++ {
		if err := mg.failedErr(); err != nil {
			return err
		}
		if rt.ctx.Err() != nil {
			return rt.ctx.Err()
		}
		cursor := mg.cursor(loser)
		next, end, err := rt.relayLog(mg, loser, cursor, catchUpFetch)
		if err != nil {
			return err
		}
		mg.setCursor(loser, next)
		lag := end - next
		if lag <= uint64(rt.cfg.BatchSize) {
			return nil
		}
		if lag >= lastLag {
			if stalled++; stalled >= maxStalledRounds {
				return nil // writers outpace the relay; the drain closes it
			}
		} else {
			stalled = 0
		}
		lastLag = lag
		if round >= maxRounds {
			return fmt.Errorf("catch-up on %s cannot converge (lag %d after %d rounds)",
				loser.primary, end-next, round)
		}
	}
}

// relayLog reads one /log page from loser at from, forwards the moving
// items to their new-ring owners, and returns the next cursor plus the
// log end at read time.
func (rt *Router) relayLog(mg *migration, loser *member, from uint64, max int) (uint64, uint64, error) {
	if max <= 0 || max > maxLogFetch {
		max = maxLogFetch
	}
	u := loser.primary + "/log?from=" + strconv.FormatUint(from, 10) + "&max=" + strconv.Itoa(max)
	resp, err := rt.get(rt.ctx, u)
	if err != nil {
		return from, 0, fmt.Errorf("tailing log of %s: %w", loser.primary, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		slurp, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return from, 0, fmt.Errorf("log of %s at %d: status %d: %s",
			loser.primary, from, resp.StatusCode, bytes.TrimSpace(slurp))
	}
	next, err := strconv.ParseUint(resp.Header.Get("X-Log-Next"), 10, 64)
	if err != nil {
		return from, 0, fmt.Errorf("log of %s: bad X-Log-Next: %v", loser.primary, err)
	}
	end, err := strconv.ParseUint(resp.Header.Get("X-Log-End"), 10, 64)
	if err != nil {
		return from, 0, fmt.Errorf("log of %s: bad X-Log-End: %v", loser.primary, err)
	}
	batches := make(map[*member][]stream.Item)
	sr := stream.NewReader(resp.Body)
	for {
		it, ok := sr.Next()
		if !ok {
			break
		}
		if !mg.moving(it.Src) {
			continue
		}
		g := mg.newOwner(it.Src)
		batches[g] = append(batches[g], it)
		if len(batches[g]) >= rt.cfg.BatchSize {
			if err := rt.forwardMigrated(mg, loser, g, batches[g]); err != nil {
				return from, 0, err
			}
			batches[g] = batches[g][:0]
		}
	}
	if err := sr.Err(); err != nil {
		return from, 0, fmt.Errorf("log stream of %s: %w", loser.primary, err)
	}
	for g, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		if err := rt.forwardMigrated(mg, loser, g, batch); err != nil {
			return from, 0, err
		}
	}
	return next, end, nil
}

// logEnd reads loser's current log end without relaying anything.
func (rt *Router) logEnd(loser *member, from uint64) (uint64, error) {
	ctx, cancel := context.WithTimeout(rt.ctx, 10*time.Second)
	defer cancel()
	u := loser.primary + "/log?from=" + strconv.FormatUint(from, 10) + "&max=1"
	resp, err := rt.get(ctx, u)
	if err != nil {
		return 0, fmt.Errorf("reading log end of %s: %w", loser.primary, err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("log end of %s: status %d", loser.primary, resp.StatusCode)
	}
	end, err := strconv.ParseUint(resp.Header.Get("X-Log-End"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("log end of %s: bad X-Log-End: %v", loser.primary, err)
	}
	return end, nil
}

// activateHandoff installs the two-ring topology under the write fence
// and captures each loser's log end with no write in flight — the exact
// boundary between items the drain must relay and items the handoff
// double-writes.
func (rt *Router) activateHandoff(mg *migration) (map[string]uint64, error) {
	start := time.Now()
	rt.topoMu.Lock()
	defer rt.topoMu.Unlock()
	cur := rt.topology()
	rt.topo.Store(&topology{
		version: cur.version, ring: cur.ring, members: cur.members,
		next: mg.new, nextMembers: mg.newMembers, mig: mg,
		all: unionMembers(cur.members, mg.newMembers),
	})
	fence := make(map[string]uint64, len(mg.losers))
	for _, loser := range mg.losers {
		end, err := rt.logEnd(loser, mg.cursor(loser))
		if err != nil {
			rt.topo.Store(cur) // undo before releasing the fence
			return nil, err
		}
		fence[loser.primary] = end
	}
	mg.handoffStall.Store(int64(time.Since(start)))
	return fence, nil
}

// drainTo relays loser's log window (cursor, end] exactly — never past
// end, where the double-written items begin.
func (rt *Router) drainTo(mg *migration, loser *member, end uint64) error {
	for {
		cursor := mg.cursor(loser)
		if cursor >= end {
			return nil
		}
		if err := mg.failedErr(); err != nil {
			return err
		}
		if rt.ctx.Err() != nil {
			return rt.ctx.Err()
		}
		max := end - cursor
		if max > maxLogFetch {
			max = maxLogFetch
		}
		next, _, err := rt.relayLog(mg, loser, cursor, int(max))
		if err != nil {
			return err
		}
		if next == cursor {
			return fmt.Errorf("log drain on %s stalled at %d (end %d)", loser.primary, cursor, end)
		}
		mg.setCursor(loser, next)
	}
}

// cutover commits the change under the write fence: the double-write
// ledger is final (every in-flight write completed its shadow
// confirmation before releasing its read lock), the journal records the
// per-loser drop budgets, and the new single-ring topology goes live in
// one pointer swap.
func (rt *Router) cutover(mg *migration) error {
	start := time.Now()
	rt.topoMu.Lock()
	defer rt.topoMu.Unlock()
	if err := mg.failedErr(); err != nil {
		return err
	}
	mg.mu.Lock()
	mg.phase = "cutover"
	mg.dropMap = make(map[string]int64, len(mg.losers))
	for _, l := range mg.losers {
		mg.dropMap[l.primary] = mg.lossFwd[l.primary].Load() + mg.shadow[l.primary].Load()
	}
	if mg.mode == "drain" && mg.absorbItems > 0 {
		// Rebase target: the gainer that confirmed the most transferred
		// items — guaranteed non-empty, so the counter has live state to
		// attach to (the windowed backend refuses an absorb into nothing).
		var bestN int64 = -1
		for _, g := range mg.gainers {
			if n := mg.gainFwd[g.primary].Load(); n > bestN {
				mg.absorbTarget, bestN = g.primary, n
			}
		}
	}
	mg.mu.Unlock()
	if err := rt.saveJournal(mg); err != nil {
		return fmt.Errorf("journaling cutover: %w", err)
	}
	rt.topo.Store(&topology{
		version: mg.targetVersion, ring: mg.new,
		members: mg.newMembers, all: mg.newMembers,
	})
	mg.cutoverStall.Store(int64(time.Since(start)))
	return nil
}

// dropAtLosers (add mode, after cutover) removes each loser's moved
// edges and subtracts its drop budget, retrying a temporarily
// unreachable member until the router closes — the change is committed,
// so this only rolls forward.
func (rt *Router) dropAtLosers(mg *migration) {
	mg.setPhase("drop")
	_ = rt.saveJournal(mg)
	q := mg.listsQuery()
	for _, loser := range mg.losers {
		mg.mu.Lock()
		items, done := mg.dropMap[loser.primary], mg.dropped[loser.primary]
		mg.mu.Unlock()
		if done {
			continue
		}
		for {
			err := rt.postDrop(loser.primary, q, items)
			if err == nil {
				mg.mu.Lock()
				mg.dropped[loser.primary] = true
				mg.mu.Unlock()
				_ = rt.saveJournal(mg)
				break
			}
			rt.cfg.Logf("cluster: migration: dropping moved partition on %s: %v (will retry)",
				loser.primary, err)
			select {
			case <-rt.ctx.Done():
				return
			case <-time.After(migRetryDelay):
			}
		}
	}
}

// postDrop issues one /partition/drop and demands a 200.
func (rt *Router) postDrop(base, listsQuery string, items int64) error {
	u := base + "/partition/drop" + listsQuery + "&items=" + strconv.FormatInt(items, 10)
	req, err := http.NewRequestWithContext(rt.ctx, http.MethodPost, u, nil)
	if err != nil {
		return err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		slurp, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(slurp))
	}
	return nil
}

// absorbAtGainer (drain mode, after cutover) delivers the counter
// rebase: the aggregation delta the copy under-counted is added to the
// chosen gainer's item counter, retrying until it lands or the router
// closes — like the add-mode drops, a committed change only rolls
// forward.
func (rt *Router) absorbAtGainer(mg *migration) {
	mg.mu.Lock()
	items, target, done := mg.absorbItems, mg.absorbTarget, mg.absorbed
	mg.mu.Unlock()
	if done || items <= 0 || target == "" {
		return
	}
	mg.setPhase("absorb")
	_ = rt.saveJournal(mg)
	for {
		err := rt.postAbsorb(target, items)
		if err == nil {
			mg.mu.Lock()
			mg.absorbed = true
			mg.mu.Unlock()
			_ = rt.saveJournal(mg)
			return
		}
		rt.cfg.Logf("cluster: migration: rebasing %d items onto %s: %v (will retry)",
			items, target, err)
		select {
		case <-rt.ctx.Done():
			return
		case <-time.After(migRetryDelay):
		}
	}
}

// postAbsorb issues one /partition/absorb and demands a 200.
func (rt *Router) postAbsorb(base string, items int64) error {
	u := base + "/partition/absorb?items=" + strconv.FormatInt(items, 10)
	req, err := http.NewRequestWithContext(rt.ctx, http.MethodPost, u, nil)
	if err != nil {
		return err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		slurp, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(slurp))
	}
	return nil
}

// memberItems reads a member's current stream-item count.
func (rt *Router) memberItems(m *member) (int64, error) {
	var st struct {
		Items int64 `json:"items"`
	}
	resp, err := rt.get(rt.ctx, m.primary+"/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("stats of %s: status %d", m.primary, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	return st.Items, nil
}

// rollbackMigration undoes a pre-cutover failure: the handoff topology
// (if live) is replaced by the plain old ring, and the gainers are
// scrubbed of the transferred state. The old owners were never modified
// — the export does not remove anything — so scrubbing the gainers is
// the whole rollback.
func (rt *Router) rollbackMigration(mg *migration, cause error) {
	rt.cfg.Logf("cluster: migration %s %s failed in phase %s: %v; rolling back",
		mg.mode, mg.target, mg.phaseName(), cause)
	mg.setPhase("rollback")
	rt.topoMu.Lock()
	cur := rt.topology()
	if cur.next != nil {
		rt.topo.Store(&topology{
			version: cur.version, ring: cur.ring,
			members: cur.members, all: cur.members,
		})
	}
	rt.topoMu.Unlock()
	rt.scrubGainers(mg)
	if rt.ctx.Err() != nil {
		// Router closing mid-rollback: the scrub may not have finished,
		// so the journal (if any) stays for the next start to resume the
		// rollback — per-gainer scrub completion is journaled, so no
		// gainer is scrubbed twice and none is left unscrubbed. Status
		// bookkeeping still completes for any waiters.
		mg.finish("failed", cause)
		rt.migMu.Lock()
		st := mg.status()
		rt.lastMig = &st
		rt.mig = nil
		rt.migMu.Unlock()
		close(mg.done)
		return
	}
	rt.clearJournal()
	mg.finish("failed", cause)
	rt.migMu.Lock()
	st := mg.status()
	rt.lastMig = &st
	rt.mig = nil
	rt.migMu.Unlock()
	close(mg.done)
}

// scrubGainers drops the transferred partitions from every gainer. A
// joining member owned nothing before the migration, so its own item
// count is the exact scrub budget — even for forwards whose
// confirmation was lost. A pre-existing gainer (drain mode) is scrubbed
// by the router's confirmed-forward ledger. Unreachable gainers are
// retried until the router closes; the phase stays "rollback" so
// /cluster/stats shows what is being waited on.
func (rt *Router) scrubGainers(mg *migration) {
	q := mg.listsQuery()
	for _, g := range mg.gainers {
		mg.mu.Lock()
		done := mg.scrubbed[g.primary]
		mg.mu.Unlock()
		if done {
			continue
		}
		for {
			if rt.ctx.Err() != nil {
				return
			}
			var items int64
			var err error
			if mg.mode == "add" {
				items, err = rt.memberItems(g)
			} else {
				items = mg.gainFwd[g.primary].Load()
			}
			if err == nil && items == 0 {
				break // nothing transferred, nothing to scrub
			}
			if err == nil {
				err = rt.postDrop(g.primary, q, items)
			}
			if err == nil {
				break
			}
			rt.cfg.Logf("cluster: migration rollback: scrubbing %s: %v (will retry)", g.primary, err)
			select {
			case <-rt.ctx.Done():
				return
			case <-time.After(migRetryDelay):
			}
		}
		mg.mu.Lock()
		mg.scrubbed[g.primary] = true
		mg.mu.Unlock()
		_ = rt.saveJournal(mg)
	}
}

// finalizeMigration persists the new member list, clears the journal
// and publishes the completed status.
func (rt *Router) finalizeMigration(mg *migration) {
	if err := rt.saveMembers(mg.new.Members(), mg.targetVersion); err != nil {
		rt.cfg.Logf("cluster: migration: persisting member list: %v", err)
	}
	rt.clearJournal()
	mg.finish("done", nil)
	rt.migMu.Lock()
	st := mg.status()
	rt.lastMig = &st
	rt.mig = nil
	rt.migMu.Unlock()
	close(mg.done)
	rt.cfg.Logf("cluster: migration %s %s done: ring v%d, %d edges / %d items moved, %d double-written",
		mg.mode, mg.target, mg.targetVersion, st.MovedEdges, st.ForwardedItems, st.ShadowItems)
}

// --- state persistence and restart recovery ---

const (
	membersFile = "members.json"
	journalFile = "migration.json"
)

// savedMembers is the members.json shape: the committed member list,
// which overrides Config.Members on restart.
type savedMembers struct {
	Members     []string `json:"members"`
	RingVersion int64    `json:"ring_version"`
}

// journalState is the migration.json shape: enough to roll an
// interrupted change back (pre-cutover) or forward (post-cutover).
type journalState struct {
	Phase      string           `json:"phase"`
	Mode       string           `json:"mode"`
	Target     string           `json:"target"`
	OldMembers []string         `json:"old_members"`
	NewMembers []string         `json:"new_members"`
	OldVersion int64            `json:"old_version"`
	NewVersion int64            `json:"new_version"`
	GainFwd    map[string]int64 `json:"gain_fwd,omitempty"`
	DropItems  map[string]int64 `json:"drop_items,omitempty"`
	Dropped    map[string]bool  `json:"dropped,omitempty"`
	Scrubbed   map[string]bool  `json:"scrubbed,omitempty"`

	AbsorbItems  int64  `json:"absorb_items,omitempty"`  // drain counter rebase owed
	AbsorbTarget string `json:"absorb_target,omitempty"` // gainer receiving it
	Absorbed     bool   `json:"absorbed,omitempty"`      // delivered
}

// committed reports whether the journaled change passed its cutover —
// the point after which recovery rolls forward instead of back.
func (j *journalState) committed() bool {
	return j.Phase == "cutover" || j.Phase == "drop" || j.Phase == "absorb"
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadMembers resolves the member list the router must serve at start:
// a committed journal's new list beats members.json, an uncommitted
// journal pins the old list, members.json beats Config.Members, and
// with no state at all the answer is nil (use Config.Members).
func (rt *Router) loadMembers() (*savedMembers, error) {
	if rt.cfg.StateDir == "" {
		return nil, nil
	}
	j, err := rt.loadJournal()
	if err != nil {
		return nil, err
	}
	if j != nil {
		if j.committed() {
			return &savedMembers{Members: j.NewMembers, RingVersion: j.NewVersion}, nil
		}
		return &savedMembers{Members: j.OldMembers, RingVersion: j.OldVersion}, nil
	}
	data, err := os.ReadFile(filepath.Join(rt.cfg.StateDir, membersFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: reading %s: %w", membersFile, err)
	}
	var sm savedMembers
	if err := json.Unmarshal(data, &sm); err != nil {
		return nil, fmt.Errorf("cluster: parsing %s: %w", membersFile, err)
	}
	if len(sm.Members) == 0 {
		return nil, fmt.Errorf("cluster: %s holds no members", membersFile)
	}
	return &sm, nil
}

func (rt *Router) saveMembers(members []string, version int64) error {
	if rt.cfg.StateDir == "" {
		return nil
	}
	if err := os.MkdirAll(rt.cfg.StateDir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(savedMembers{Members: members, RingVersion: version})
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(rt.cfg.StateDir, membersFile), data)
}

func (rt *Router) saveJournal(mg *migration) error {
	if rt.cfg.StateDir == "" {
		return nil
	}
	if err := os.MkdirAll(rt.cfg.StateDir, 0o755); err != nil {
		return err
	}
	mg.mu.Lock()
	j := journalState{
		Phase: mg.phase, Mode: mg.mode, Target: mg.target,
		OldMembers: mg.old.Members(), NewMembers: mg.new.Members(),
		OldVersion: mg.targetVersion - 1, NewVersion: mg.targetVersion,
		GainFwd: make(map[string]int64, len(mg.gainFwd)),
	}
	for u, c := range mg.gainFwd {
		j.GainFwd[u] = c.Load()
	}
	if mg.dropMap != nil {
		j.DropItems = make(map[string]int64, len(mg.dropMap))
		for u, n := range mg.dropMap {
			j.DropItems[u] = n
		}
	}
	if len(mg.dropped) > 0 {
		j.Dropped = make(map[string]bool, len(mg.dropped))
		for u, d := range mg.dropped {
			j.Dropped[u] = d
		}
	}
	if len(mg.scrubbed) > 0 {
		j.Scrubbed = make(map[string]bool, len(mg.scrubbed))
		for u, d := range mg.scrubbed {
			j.Scrubbed[u] = d
		}
	}
	j.AbsorbItems, j.AbsorbTarget, j.Absorbed = mg.absorbItems, mg.absorbTarget, mg.absorbed
	mg.mu.Unlock()
	data, err := json.Marshal(j)
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(rt.cfg.StateDir, journalFile), data)
}

func (rt *Router) loadJournal() (*journalState, error) {
	if rt.cfg.StateDir == "" {
		return nil, nil
	}
	data, err := os.ReadFile(filepath.Join(rt.cfg.StateDir, journalFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: reading %s: %w", journalFile, err)
	}
	var j journalState
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("cluster: parsing %s: %w", journalFile, err)
	}
	return &j, nil
}

func (rt *Router) clearJournal() {
	if rt.cfg.StateDir == "" {
		return
	}
	if err := os.Remove(filepath.Join(rt.cfg.StateDir, journalFile)); err != nil && !os.IsNotExist(err) {
		rt.cfg.Logf("cluster: removing migration journal: %v", err)
	}
}

// recoverMigration (called from New) resumes an interrupted membership
// change from its journal: committed changes finish their drops, the
// rest roll back. The work runs in the background — members may still
// be starting — and /cluster/stats shows it as a normal migration.
func (rt *Router) recoverMigration() error {
	j, err := rt.loadJournal()
	if err != nil {
		return err
	}
	if j == nil {
		return nil
	}
	mg, err := rt.migrationFromJournal(j)
	if err != nil {
		return err
	}
	rt.migMu.Lock()
	rt.mig = mg
	rt.migMu.Unlock()
	rt.cfg.Logf("cluster: recovering interrupted migration (%s %s, phase %s)",
		j.Mode, j.Target, j.Phase)
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		if j.committed() {
			// The serving topology was already built from the journal's
			// new member list; only the drops (add) or the counter
			// rebase (drain) remain.
			if mg.mode == "add" {
				rt.dropAtLosers(mg)
			} else {
				rt.absorbAtGainer(mg)
			}
			if rt.ctx.Err() != nil {
				return
			}
			rt.finalizeMigration(mg)
			return
		}
		rt.rollbackMigration(mg, errors.New("router restarted mid-migration"))
	}()
	return nil
}

// migrationFromJournal rebuilds the migration bookkeeping a restarted
// router needs to finish (or undo) a journaled change. The drain-mode
// rollback budget is the journaled ledger, which trails reality by at
// most the items forwarded after the last journal write; add-mode
// rollback re-reads the gainer's live item count and is exact.
func (rt *Router) migrationFromJournal(j *journalState) (*migration, error) {
	oldRing, err := NewRing(j.OldMembers)
	if err != nil {
		return nil, fmt.Errorf("cluster: journal old members: %w", err)
	}
	newRing, err := NewRing(j.NewMembers)
	if err != nil {
		return nil, fmt.Errorf("cluster: journal new members: %w", err)
	}
	mg := &migration{
		mode: j.Mode, target: j.Target,
		old: oldRing, new: newRing,
		started:       time.Now(),
		targetVersion: j.NewVersion,
		phase:         j.Phase,
		cursors:       make(map[string]uint64),
		dropped:       make(map[string]bool),
		scrubbed:      make(map[string]bool),
		done:          make(chan struct{}),
	}
	mg.oldMembers = make([]*member, oldRing.Size())
	for i := 0; i < oldRing.Size(); i++ {
		if mg.oldMembers[i], err = rt.memberFor(oldRing.Member(i)); err != nil {
			return nil, err
		}
	}
	mg.newMembers = make([]*member, newRing.Size())
	for i := 0; i < newRing.Size(); i++ {
		if mg.newMembers[i], err = rt.memberFor(newRing.Member(i)); err != nil {
			return nil, err
		}
	}
	switch j.Mode {
	case "add":
		mg.losers = mg.oldMembers
		mg.gainers = []*member{rt.lookupMember(j.Target)}
	case "drain":
		mg.losers = []*member{rt.lookupMember(j.Target)}
		mg.gainers = mg.newMembers
	default:
		return nil, fmt.Errorf("cluster: journal mode %q unknown", j.Mode)
	}
	if mg.losers[0] == nil || mg.gainers[0] == nil {
		return nil, fmt.Errorf("cluster: journal target %q is not in either member list", j.Target)
	}
	mg.lossFwd = make(map[string]*atomic.Int64, len(mg.losers))
	mg.shadow = make(map[string]*atomic.Int64, len(mg.losers))
	for _, l := range mg.losers {
		mg.lossFwd[l.primary] = new(atomic.Int64)
		mg.shadow[l.primary] = new(atomic.Int64)
	}
	mg.gainFwd = make(map[string]*atomic.Int64, len(mg.gainers))
	for _, g := range mg.gainers {
		c := new(atomic.Int64)
		c.Store(j.GainFwd[g.primary])
		mg.gainFwd[g.primary] = c
	}
	if j.DropItems != nil {
		mg.dropMap = make(map[string]int64, len(j.DropItems))
		for u, n := range j.DropItems {
			mg.dropMap[u] = n
		}
	}
	for u, d := range j.Dropped {
		mg.dropped[u] = d
	}
	for u, d := range j.Scrubbed {
		mg.scrubbed[u] = d
	}
	mg.absorbItems, mg.absorbTarget, mg.absorbed = j.AbsorbItems, j.AbsorbTarget, j.Absorbed
	return mg, nil
}
