package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faultproxy"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Chaos battery: a seeded randomized fault schedule runs against a live
// 3-member cluster while a writer streams items through the router and
// strict/partial readers hammer every read endpoint. Three invariants
// are asserted throughout, and one at the end:
//
//   - strict reads NEVER leak partial data: no X-Gss-Partial header, no
//     partial/missing_members/certain fields, on any 200;
//   - partial reads are always flagged consistently: the header is
//     present, the body markers agree with it, and a degraded response
//     names the members it is missing;
//   - deadline-bounded reads return within their budget;
//   - after the faults heal, the router's observables diff EXACTLY
//     against a single-node oracle fed the confirmed writes.
//
// The fault schedule is deterministic per seed. Set GSS_CHAOS_SEED to
// replay a failing nightly run; the seed is logged on every run.

// chaosSeed resolves the battery's seed: GSS_CHAOS_SEED if set, a fixed
// default otherwise. Always logged so a failure names its replay.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260808)
	if raw := os.Getenv("GSS_CHAOS_SEED"); raw != "" {
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			t.Fatalf("GSS_CHAOS_SEED=%q: %v", raw, err)
		}
		seed = n
	}
	t.Logf("chaos seed %d (set GSS_CHAOS_SEED=%d to reproduce)", seed, seed)
	return seed
}

// chaosStream generates the live write load. Same shape discipline as
// equivStream: sized so the test sketch summarizes exactly and any
// post-heal diff is a router bug, not sketch noise.
func chaosStream(nodes, edges int, seed int64) []stream.Item {
	return stream.Generate(stream.DatasetConfig{Name: "chaos",
		Nodes: nodes, Edges: edges, DegreeSkew: 1.4, WeightSkew: 1.2,
		MaxWeight: 100, UniformMix: 0.3, Seed: seed})
}

// chaosReadPaths are the member paths the schedule may mangle with
// response-body faults (throttle, truncation, blackhole, latency).
// These are idempotent GETs — a mangled response is retried or failed,
// never half-applied. Write paths (/ingest, /insert) and the health
// probe only ever see pre-forward faults (down, reset, status), which
// guarantee the backend never saw the request, keeping every write
// chunk's outcome attributable.
var chaosReadPaths = []string{
	"/edge", "/successors", "/precursors", "/nodeout", "/nodein",
	"/nodes", "/heavy", "/stats", "/reachable",
}

// chaosViolations collects invariant breaches from the reader and
// writer goroutines (t.Fatalf is main-goroutine-only).
type chaosViolations struct {
	mu sync.Mutex
	v  []string
}

func (c *chaosViolations) addf(format string, args ...interface{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.v) < 20 { // enough to diagnose; don't flood the log
		c.v = append(c.v, fmt.Sprintf(format, args...))
	}
}

func (c *chaosViolations) report(t *testing.T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range c.v {
		t.Errorf("chaos invariant: %s", v)
	}
}

// chunkByOwner splits the stream into single-owner chunks of at most
// size items, round-robining owners so every partition sees writes
// throughout the run. Single-owner chunks are what makes a 429 reply
// attributable: the chunk feeds exactly one member stream, so the
// router's dropped count is the unapplied PREFIX (lines routed to the
// stream before the partition was marked down) and the spilled count is
// the absorbed SUFFIX.
func chunkByOwner(ring *Ring, items []stream.Item, size int) [][]stream.Item {
	buckets := make([][]stream.Item, ring.Size())
	for _, it := range items {
		o := ring.Owner(it.Src)
		buckets[o] = append(buckets[o], it)
	}
	var chunks [][]stream.Item
	for progress := true; progress; {
		progress = false
		for o := range buckets {
			if len(buckets[o]) == 0 {
				continue
			}
			n := min(size, len(buckets[o]))
			chunks = append(chunks, buckets[o][:n])
			buckets[o] = buckets[o][n:]
			progress = true
		}
	}
	return chunks
}

// chaosWriteChunk pushes one single-owner chunk through the router
// until every item is confirmed (ingested or durably spilled), and
// returns the items in confirmation order. The fault schedule only
// aborts writes pre-forward, so:
//
//	200 → the whole remainder was applied (ingested + spilled = len);
//	429 → ingested is 0 (the member stream aborted before the backend
//	      saw a byte), the spilled suffix rest[dropped:] was absorbed,
//	      and the dropped prefix rest[:dropped] is safe to resend;
//	502 → an injected 5xx refused the member stream pre-forward, or the
//	      router's deadline hit first: nothing applied, resend all.
//
// Anything else is an attribution failure and fails the test: it would
// mean a write was half-applied, which the schedule is built to forbid.
func chaosWriteChunk(routerURL string, chunk []stream.Item) ([]stream.Item, error) {
	applied := make([]stream.Item, 0, len(chunk))
	rest := chunk
	deadline := time.Now().Add(20 * time.Second)
	for len(rest) > 0 {
		var buf bytes.Buffer
		if err := stream.EncodeNDJSON(&buf, rest); err != nil {
			return applied, err
		}
		resp, err := http.Post(routerURL+"/ingest", "application/x-ndjson", &buf)
		if err != nil {
			return applied, fmt.Errorf("router unreachable: %v", err)
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		var res struct {
			Ingested int64 `json:"ingested"`
			Spilled  int64 `json:"spilled"`
			Dropped  int64 `json:"dropped"`
		}
		switch resp.StatusCode {
		case http.StatusOK:
			if err := json.Unmarshal(raw, &res); err != nil {
				return applied, fmt.Errorf("ingest 200 body: %v (%s)", err, raw)
			}
			if res.Ingested+res.Spilled != int64(len(rest)) {
				return applied, fmt.Errorf("ingest 200 confirmed %d+%d of %d: %s",
					res.Ingested, res.Spilled, len(rest), raw)
			}
			applied = append(applied, rest...)
			rest = nil
		case http.StatusTooManyRequests:
			if err := json.Unmarshal(raw, &res); err != nil {
				return applied, fmt.Errorf("ingest 429 body: %v (%s)", err, raw)
			}
			if res.Ingested != 0 || res.Spilled+res.Dropped != int64(len(rest)) {
				return applied, fmt.Errorf(
					"ingest 429 not attributable (ingested %d, spilled %d, dropped %d of %d): %s",
					res.Ingested, res.Spilled, res.Dropped, len(rest), raw)
			}
			applied = append(applied, rest[res.Dropped:]...)
			rest = rest[:res.Dropped]
		case http.StatusBadGateway:
			// Injected member refusal; nothing reached the backend.
		default:
			return applied, fmt.Errorf("ingest status %d: %s", resp.StatusCode, raw)
		}
		if len(rest) > 0 {
			if time.Now().After(deadline) {
				return applied, fmt.Errorf("chunk never confirmed (%d items left)", len(rest))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return applied, nil
}

// strictBodyMarkers are the fields a strict response must never carry.
var strictBodyMarkers = []string{"partial", "missing_members", "certain"}

// chaosStrictProbe issues one strict read and checks it leaks nothing.
func chaosStrictProbe(client *http.Client, base string, nodes []string, rng *rand.Rand, viol *chaosViolations) bool {
	src := nodes[rng.Intn(len(nodes))]
	dst := nodes[rng.Intn(len(nodes))]
	urls := []string{
		"/edge?src=" + queryEscape(src) + "&dst=" + queryEscape(dst),
		"/successors?v=" + queryEscape(src),
		"/nodeout?v=" + queryEscape(src),
		"/nodes?limit=50",
		"/nodein?v=" + queryEscape(dst),
		"/precursors?v=" + queryEscape(dst),
		"/stats",
		"/heavy?min=2",
		"/reachable?src=" + queryEscape(src) + "&dst=" + queryEscape(dst) + "&timeout_ms=500",
	}
	q := urls[rng.Intn(len(urls))]
	bounded := rng.Intn(3) == 0 && q != urls[8]
	if bounded {
		sep := "?"
		if bytes.ContainsRune([]byte(q), '?') {
			sep = "&"
		}
		q += sep + "timeout_ms=300"
	}
	start := time.Now()
	resp, err := client.Get(base + q)
	if err != nil {
		return false
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if bounded && time.Since(start) > 5*time.Second {
		viol.addf("strict %s with 300ms budget took %v", q, time.Since(start))
	}
	if resp.StatusCode == http.StatusBadRequest {
		viol.addf("strict %s answered 400: %s", q, raw)
		return false
	}
	if h := resp.Header.Get(headerPartial); h != "" {
		viol.addf("strict %s leaked %s=%q (status %d)", q, headerPartial, h, resp.StatusCode)
	}
	if resp.StatusCode != http.StatusOK {
		return false
	}
	if len(raw) > 0 && raw[0] == '{' {
		var body map[string]interface{}
		if json.Unmarshal(raw, &body) == nil {
			for _, k := range strictBodyMarkers {
				if _, leaked := body[k]; leaked {
					viol.addf("strict %s leaked %q in body: %s", q, k, raw)
				}
			}
		}
	}
	return true
}

// chaosPartialProbe issues one ?partial=1 scatter read and checks the
// degradation markers are present and mutually consistent.
func chaosPartialProbe(client *http.Client, base string, nodes []string, rng *rand.Rand, viol *chaosViolations) (ok, degraded bool) {
	src := nodes[rng.Intn(len(nodes))]
	dst := nodes[rng.Intn(len(nodes))]
	urls := []string{
		"/nodes?limit=50",
		"/nodein?v=" + queryEscape(dst),
		"/precursors?v=" + queryEscape(dst),
		"/stats",
		"/heavy?min=2",
		"/reachable?src=" + queryEscape(src) + "&dst=" + queryEscape(dst) + "&timeout_ms=500",
	}
	q := urls[rng.Intn(len(urls))]
	isHeavy := q == urls[4]
	isReach := q == urls[5]
	sep := "?"
	if bytes.ContainsRune([]byte(q), '?') {
		sep = "&"
	}
	q += sep + "partial=1"
	resp, err := client.Get(base + q)
	if err != nil {
		return false, false
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode == http.StatusBadRequest {
		viol.addf("partial %s answered 400: %s", q, raw)
		return false, false
	}
	if resp.StatusCode != http.StatusOK {
		return false, false
	}
	h := resp.Header.Get(headerPartial)
	if h != "true" && h != "false" {
		viol.addf("partial %s answered 200 with %s=%q", q, headerPartial, h)
		return true, false
	}
	degraded = h == "true"
	if degraded && resp.Header.Get(headerMissing) == "" {
		viol.addf("partial %s degraded but %s empty", q, headerMissing)
	}
	if isHeavy {
		return true, degraded // JSON array: markers ride the headers only
	}
	var body map[string]interface{}
	if err := json.Unmarshal(raw, &body); err != nil {
		viol.addf("partial %s body: %v (%s)", q, err, raw)
		return true, degraded
	}
	if p, _ := body["partial"].(bool); p != degraded {
		viol.addf("partial %s header %q but body partial=%v: %s", q, h, body["partial"], raw)
	}
	if degraded {
		if miss, _ := body["missing_members"].([]interface{}); len(miss) == 0 {
			viol.addf("partial %s degraded but missing_members empty: %s", q, raw)
		}
	}
	if isReach {
		if _, has := body["certain"].(bool); !has {
			viol.addf("partial %s missing certain field: %s", q, raw)
		}
	}
	return true, degraded
}

// TestChaosBattery is the headline robustness test: the full fault
// schedule, live writes, strict and partial readers, then an exact
// post-heal oracle diff.
func TestChaosBattery(t *testing.T) {
	seed := chaosSeed(t)
	chaosFor := 2500 * time.Millisecond
	extraNodes, extraEdges := 200, 1600
	if testing.Short() {
		chaosFor = 900 * time.Millisecond
		extraNodes, extraEdges = 120, 500
	}

	opt := server.Options{Backend: sketch.BackendConcurrent}
	fms := make([]*faultMember, 3)
	urls := make([]string, 3)
	for i := range fms {
		fms[i] = startFaultMember(t, opt)
		urls[i] = fms[i].url
	}
	rt, ts := newTestRouter(t, Config{
		Members:       urls,
		ProbeInterval: 25 * time.Millisecond,
		// Generous probe budget: down proxies abort instantly so failure
		// detection stays fast, but a loaded CI host must not flap a
		// healthy member on a slow /healthz.
		ProbeTimeout:      2 * time.Second,
		SpillDir:          t.TempDir(),
		AllowPartialReads: true,
		ReadTimeout:       2 * time.Second,
		RetryBackoff:      5 * time.Millisecond,
	})
	routerURL := ts.URL

	// A clean base load before the faults start, so readers always have
	// real nodes to probe.
	base := chaosStream(120, 500, seed)
	ingestAll(t, routerURL, base)
	nodes := nodesOf(base)

	ring, err := NewRing(urls)
	if err != nil {
		t.Fatal(err)
	}
	extra := chaosStream(extraNodes, extraEdges, seed+1)
	chunks := chunkByOwner(ring, extra, 24)

	viol := &chaosViolations{}
	stop := make(chan struct{})
	var readers sync.WaitGroup

	// Writer: paced across the chaos window, confirming every chunk.
	applied := append([]stream.Item(nil), base...)
	writerErr := make(chan error, 1)
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		interval := chaosFor / time.Duration(len(chunks)+1)
		start := time.Now()
		for i, chunk := range chunks {
			got, err := chaosWriteChunk(routerURL, chunk)
			applied = append(applied, got...)
			if err != nil {
				writerErr <- fmt.Errorf("chunk %d/%d: %v", i+1, len(chunks), err)
				return
			}
			if ahead := start.Add(time.Duration(i+1) * interval); time.Now().Before(ahead) {
				time.Sleep(time.Until(ahead))
			}
		}
		writerErr <- nil
	}()

	// Readers: one strict, one partial, until the chaos window closes.
	var strictReqs, strictOK, partialReqs, partialOK, partialDegraded int64
	readers.Add(2)
	go func() {
		defer readers.Done()
		client := &http.Client{Timeout: 8 * time.Second}
		rng := rand.New(rand.NewSource(seed + 2))
		for {
			select {
			case <-stop:
				return
			default:
			}
			strictReqs++
			if chaosStrictProbe(client, routerURL, nodes, rng, viol) {
				strictOK++
			}
		}
	}()
	go func() {
		defer readers.Done()
		client := &http.Client{Timeout: 8 * time.Second}
		rng := rand.New(rand.NewSource(seed + 3))
		for {
			select {
			case <-stop:
				return
			default:
			}
			partialReqs++
			ok, degraded := chaosPartialProbe(client, routerURL, nodes, rng, viol)
			if ok {
				partialOK++
			}
			if degraded {
				partialDegraded++
			}
		}
	}()

	// The fault schedule itself: seeded, so a failing nightly run
	// replays exactly under its printed seed.
	actor := rand.New(rand.NewSource(seed + 4))
	for end := time.Now().Add(chaosFor); time.Now().Before(end); {
		fm := fms[actor.Intn(len(fms))]
		switch actor.Intn(7) {
		case 0:
			fm.proxy.SetDown(true)
		case 1, 2:
			fm.proxy.SetDown(false)
		case 3:
			fm.proxy.Set(faultproxy.Fault{Prob: 0.35, Reset: true})
		case 4:
			fm.proxy.Set(faultproxy.Fault{Prob: 0.5, Status: 503})
		case 5:
			p := chaosReadPaths[actor.Intn(len(chaosReadPaths))]
			fm.proxy.Set(
				faultproxy.Fault{Path: p, Prob: 0.6,
					Latency: time.Duration(20+actor.Intn(100)) * time.Millisecond},
				faultproxy.Fault{Path: p, Prob: 0.3, TruncateBody: 40},
				faultproxy.Fault{Path: p, Prob: 0.2, Blackhole: true},
			)
		case 6:
			fm.proxy.Set() // clear injected faults; the down switch stands
		}
		time.Sleep(time.Duration(10+actor.Intn(40)) * time.Millisecond)
	}
	close(stop)
	readers.Wait()

	// Heal: clear every fault, bring every proxy up, let the writer
	// finish against the healthy cluster.
	for _, fm := range fms {
		fm.proxy.Clear()
	}
	writer.Wait()
	if err := <-writerErr; err != nil {
		t.Fatalf("chaos writer: %v", err)
	}
	viol.report(t)
	t.Logf("chaos load: strict %d/%d ok, partial %d/%d ok (%d degraded), %d items confirmed",
		strictOK, strictReqs, partialOK, partialReqs, partialDegraded, len(applied))

	// Every partition healthy and every spill drained before the diff.
	waitCluster(t, rt, "post-heal recovery", func(st ClusterStats) bool {
		if st.DownMembers != 0 {
			return false
		}
		for _, ms := range st.Members {
			if !ms.Healthy || (ms.Spill != nil && ms.Spill.PendingItems != 0) {
				return false
			}
		}
		return true
	})

	// The exactness oracle: a single node fed exactly the confirmed
	// writes must agree with the healed cluster on every observable.
	oracleURL := oracleOf(t, opt, applied)
	diffObservables(t, routerURL, oracleURL, applied, seed)
}
