package cluster

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/sketch"
)

// restartableMember is a member whose process can be "killed" (listener
// and connections torn down without flushing server state — crash
// semantics) and started again on the same address, so the router's
// view of one URL spans the member's death and recovery.
type restartableMember struct {
	t      *testing.T
	opt    server.Options
	addr   string
	srv    *server.Server
	ts     *httptest.Server
	holder net.Listener // holds addr while killed (see testMember.die)
}

func startRestartableMember(t *testing.T, opt server.Options) *restartableMember {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m := &restartableMember{t: t, opt: opt, addr: l.Addr().String()}
	m.start(l)
	return m
}

func (m *restartableMember) start(l net.Listener) {
	m.t.Helper()
	opt := m.opt
	opt.Logf = silentLogf
	srv, err := server.NewWithOptions(testCfg, opt)
	if err != nil {
		m.t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	m.srv, m.ts = srv, ts
	// Server instances pile up across restarts; close the current one
	// at test end (cleanups run LIFO, so the last restart's instance is
	// closed first).
	m.t.Cleanup(func() { srv.Close() })
}

// kill simulates a crash: connections die mid-flight and nothing is
// flushed. The server.Server is deliberately not Closed — a crash
// would not have run its shutdown path either.
func (m *restartableMember) kill() {
	m.ts.CloseClientConnections()
	m.ts.Close()
	// Hold the freed address until restart so no other test (or test
	// process) can bind it and impersonate the dead member to the
	// router's prober.
	m.holder = holdPort(m.t, m.addr)
}

// restart binds a fresh server to the same address; with a durable
// Options (LogDir/CheckpointDir) it recovers the pre-kill state.
func (m *restartableMember) restart() {
	m.t.Helper()
	if m.holder != nil {
		m.holder.Close()
		m.holder = nil
	}
	l, err := net.Listen("tcp", m.addr)
	if err != nil {
		m.t.Fatal(err)
	}
	m.start(l)
}

func (m *restartableMember) url() string { return "http://" + m.addr }

// memberIndex finds url's row in the router's stats (ring order is not
// config order).
func memberIndex(t *testing.T, rt *Router, url string) int {
	t.Helper()
	for i, ms := range rt.Stats().Members {
		if ms.URL == url {
			return i
		}
	}
	t.Fatalf("member %s not in router stats", url)
	return -1
}

// waitMember polls the member's stats row until cond accepts it.
func waitMember(t *testing.T, rt *Router, idx int, what string, cond func(MemberStatus) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ms := rt.Stats().Members[idx]
		if cond(ms) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s: %+v (spill %+v)", what, ms, ms.Spill)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterSpillAbsorbsAndReplays: a write to a down partition with a
// spill configured is acknowledged as "spilled" instead of 429, shows
// up as pending in /cluster/stats, and is delivered to the member once
// the prober sees it again.
func TestRouterSpillAbsorbsAndReplays(t *testing.T) {
	rm := startRestartableMember(t, server.Options{Backend: sketch.BackendConcurrent})
	rt, ts := newTestRouter(t, Config{
		Members:       []string{rm.url()},
		ProbeInterval: 20 * time.Millisecond,
		SpillDir:      t.TempDir(),
	})
	idx := memberIndex(t, rt, rm.url())

	rm.kill()
	waitMember(t, rt, idx, "member down", func(ms MemberStatus) bool { return !ms.Healthy })

	// Two inserts while down: both absorbed, none dropped.
	var res struct {
		Inserted int64 `json:"inserted"`
		Spilled  int64 `json:"spilled"`
	}
	resp, raw := postBody(t, ts.URL+"/insert", `{"src":"a","dst":"b","weight":5}`, &res)
	if resp.StatusCode != http.StatusOK || res.Spilled != 1 || res.Inserted != 0 {
		t.Fatalf("spilled insert: status %d body %s", resp.StatusCode, raw)
	}
	resp, raw = postBody(t, ts.URL+"/insert", `[{"src":"c","dst":"d","weight":2},{"src":"e","dst":"f"}]`, &res)
	if resp.StatusCode != http.StatusOK || res.Spilled != 2 {
		t.Fatalf("spilled insert: status %d body %s", resp.StatusCode, raw)
	}
	st := rt.Stats().Members[idx]
	if st.Spill == nil || st.Spill.PendingItems != 3 || st.Spill.SpilledItems != 3 {
		t.Fatalf("spill stats after absorb: %+v", st.Spill)
	}

	// Recovery: the prober kicks the replay, the spill drains, and the
	// member (fresh — it crashed with no durable state) holds exactly
	// the spilled items.
	rm.restart()
	waitMember(t, rt, idx, "spill drained", func(ms MemberStatus) bool {
		return ms.Healthy && ms.Spill.PendingItems == 0 && ms.Spill.Replays >= 1
	})
	st = rt.Stats().Members[idx]
	if st.Spill.ReplayedItems != 3 {
		t.Fatalf("replayed %d items, want 3: %+v", st.Spill.ReplayedItems, st.Spill)
	}
	for _, tc := range []struct {
		src, dst string
		weight   int64
	}{{"a", "b", 5}, {"c", "d", 2}, {"e", "f", 1}} {
		var er struct {
			Weight int64 `json:"weight"`
			Found  bool  `json:"found"`
		}
		getJSON(t, rm.url()+"/edge?src="+tc.src+"&dst="+tc.dst, &er)
		if !er.Found || er.Weight != tc.weight {
			t.Fatalf("replayed edge %s->%s = (%d,%v), want (%d,true)",
				tc.src, tc.dst, er.Weight, er.Found, tc.weight)
		}
	}

	// Writes flow directly again.
	res.Inserted, res.Spilled = 0, 0
	resp, raw = postBody(t, ts.URL+"/insert", `{"src":"g","dst":"h"}`, &res)
	if resp.StatusCode != http.StatusOK || res.Inserted != 1 || res.Spilled != 0 {
		t.Fatalf("post-recovery insert: status %d body %s", resp.StatusCode, raw)
	}
}

// TestRouterSpillBudget: the spill is bounded — at SpillMaxBytes the
// router reverts to the 429 + Retry-After contract, all-or-nothing.
func TestRouterSpillBudget(t *testing.T) {
	rm := startRestartableMember(t, server.Options{Backend: sketch.BackendConcurrent})
	rt, ts := newTestRouter(t, Config{
		Members:       []string{rm.url()},
		ProbeInterval: 20 * time.Millisecond,
		SpillDir:      t.TempDir(),
		// Room for the segment header plus one small record, not two:
		// the first insert is absorbed, the second refused.
		SpillMaxBytes: 20,
	})
	idx := memberIndex(t, rt, rm.url())
	rm.kill()
	waitMember(t, rt, idx, "member down", func(ms MemberStatus) bool { return !ms.Healthy })

	var res writeRes
	resp, raw := postBody(t, ts.URL+"/insert", `{"src":"a","dst":"b"}`, &res)
	if resp.StatusCode != http.StatusOK || res.Spilled != 1 {
		t.Fatalf("first insert should spill: status %d body %s", resp.StatusCode, raw)
	}
	res = writeRes{}
	resp, raw = postBody(t, ts.URL+"/insert", `{"src":"c","dst":"d"}`, &res)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("insert past spill budget: status %d body %s, want 429", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if res.Inserted != 0 || res.Dropped != 1 {
		t.Fatalf("all-or-nothing violated past budget: %s", raw)
	}

	// /ingest over budget: spillable lines up to the cap, 429 with exact
	// accounting for the rest.
	var lines strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&lines, "{\"src\":\"n%d\",\"dst\":\"x\"}\n", i)
	}
	res = writeRes{}
	resp, raw = postBody(t, ts.URL+"/ingest", lines.String(), &res)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("ingest past spill budget: status %d body %s, want 429", resp.StatusCode, raw)
	}
	if res.Ingested+res.Spilled+res.Dropped != 10 {
		t.Fatalf("accounting does not add up to 10: %s", raw)
	}
	if res.Dropped == 0 {
		t.Fatalf("budget never refused anything: %s", raw)
	}
}

// TestRouterSpillSurvivesRestart: a spill absorbed by one router
// process is replayed by the next — the durability promise that
// distinguishes the spill from an in-memory buffer.
func TestRouterSpillSurvivesRestart(t *testing.T) {
	rm := startRestartableMember(t, server.Options{Backend: sketch.BackendConcurrent})
	spillDir := t.TempDir()

	rt1, err := New(Config{Members: []string{rm.url()},
		ProbeInterval: 20 * time.Millisecond, SpillDir: spillDir, Logf: silentLogf})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(rt1.Handler())
	idx := memberIndex(t, rt1, rm.url())
	rm.kill()
	waitMember(t, rt1, idx, "member down", func(ms MemberStatus) bool { return !ms.Healthy })
	resp, raw := postBody(t, ts1.URL+"/insert", `{"src":"a","dst":"b","weight":7}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spilled insert: status %d body %s", resp.StatusCode, raw)
	}
	ts1.Close()
	rt1.Close()

	// The second router process finds the spill on disk; the member is
	// back, so the first healthy probe drains it.
	rm.restart()
	rt2, _ := newTestRouter(t, Config{Members: []string{rm.url()},
		ProbeInterval: 20 * time.Millisecond, SpillDir: spillDir})
	waitMember(t, rt2, idx, "inherited spill drained", func(ms MemberStatus) bool {
		return ms.Healthy && ms.Spill.PendingItems == 0 && ms.Spill.ReplayedItems == 1
	})
	var er struct {
		Weight int64 `json:"weight"`
		Found  bool  `json:"found"`
	}
	getJSON(t, rm.url()+"/edge?src=a&dst=b", &er)
	if !er.Found || er.Weight != 7 {
		t.Fatalf("inherited spill edge = (%d,%v), want (7,true)", er.Weight, er.Found)
	}
}

// TestSpillDirName: URL flattening keeps host and port readable and
// never emits path separators.
func TestSpillDirName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"http://127.0.0.1:8081", "http___127.0.0.1_8081"},
		{"http://a.example.com:8080/", "http___a.example.com_8080"},
	} {
		if got := spillDirName(tc.in); got != tc.want {
			t.Fatalf("spillDirName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
