package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// Read-plane discipline. The write plane degrades explicitly when a
// partition is unavailable (spill logs, 429 + Retry-After); this file
// is the read plane's equivalent. Every read request gets a deadline
// budget (Config.ReadTimeout, overridable per request with
// ?timeout_ms=), idempotent member GETs retry with jittered backoff
// across primary→follower→primary, member responses decode through a
// hard byte cap, and scatter-gathered queries can opt into partial
// answers (Config.AllowPartialReads + ?partial=1) that serve the
// surviving members' merge with the missing members declared instead
// of turning one dead member into a cluster-wide 502. Strict mode —
// the default — keeps the old all-or-nothing wire shapes byte for
// byte.

const (
	// defaultReadRetries is how many extra attempts a member read gets
	// when Config.ReadRetries is zero. Retries also power same-request
	// fail-over: the attempt schedule alternates primary and follower.
	defaultReadRetries = 2
	// defaultRetryBackoff is the base backoff between read attempts;
	// each retry doubles it and the sleep is jittered ±50%.
	defaultRetryBackoff = 25 * time.Millisecond
	// defaultMaxResponseBytes caps one member's decoded response body
	// in scatter-gather merges (64 MiB).
	defaultMaxResponseBytes = 64 << 20
)

// headerPartial marks a degraded response; headerMissing lists the
// member primaries whose data the response is missing. /heavy, whose
// payload is a JSON array, carries its partial markers only here.
const (
	headerPartial = "X-Gss-Partial"
	headerMissing = "X-Gss-Missing-Members"
)

// readCtx derives the context for one read request: bound to the
// request and the router lifetime (reqCtx) plus the read deadline
// budget. ?timeout_ms= overrides Config.ReadTimeout for the request;
// 0 disables the deadline. Returns ok=false after writing a 400.
func (rt *Router) readCtx(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	d := rt.cfg.ReadTimeout
	if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest,
				"timeout_ms must be a non-negative integer (0 disables the deadline)")
			return nil, nil, false
		}
		d = time.Duration(n) * time.Millisecond
	}
	ctx, cancel := rt.reqCtx(r)
	if d <= 0 {
		return ctx, cancel, true
	}
	tctx, tcancel := context.WithTimeout(ctx, d)
	return tctx, func() { tcancel(); cancel() }, true
}

// partialMode reports whether the request opted into partial reads
// with ?partial=1. Partial mode is an explicit operator decision:
// without Config.AllowPartialReads the parameter answers 400, so a
// client cannot silently receive incomplete data from a router that
// promises strict reads. Returns ok=false after writing a 400.
func (rt *Router) partialMode(w http.ResponseWriter, r *http.Request) (bool, bool) {
	switch r.URL.Query().Get("partial") {
	case "", "0", "false":
		return false, true
	case "1", "true":
		if !rt.cfg.AllowPartialReads {
			httpError(w, http.StatusBadRequest,
				"partial reads are disabled (start the router with -allow-partial-reads)")
			return false, false
		}
		return true, true
	default:
		httpError(w, http.StatusBadRequest, "partial must be 0 or 1")
		return false, false
	}
}

// sleepJittered waits d jittered across [d/2, 3d/2) — so concurrent
// retries against a recovering member do not arrive as a burst — and
// returns early with the context error if ctx dies first.
func sleepJittered(ctx context.Context, d time.Duration) error {
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// memberGet issues one idempotent read against m's partition under the
// retry discipline: up to 1+Config.ReadRetries attempts with jittered
// exponential backoff, alternating primary and follower when a
// follower exists (primary→follower→primary, starting wherever the
// router currently believes the data is). A transport failure against
// the primary marks it down on the spot; a success against a
// down-marked primary marks it back up before the next probe tick. A
// 5xx answer retries like a transport failure (the GET is idempotent)
// but the last attempt's response passes through whatever its status.
// The caller owns the response body.
//
// When the request is traced (the slow-query middleware planted a
// telemetry.Trace in ctx), the whole retry episode is recorded as one
// span — target, op, attempts spent, wall time, final error — so a
// slow scatter-gather's log line names the member that dragged it.
func (rt *Router) memberGet(ctx context.Context, m *member, pathQuery string) (*http.Response, error) {
	tr := telemetry.TraceFrom(ctx)
	if tr == nil {
		return rt.memberGetAttempts(ctx, m, pathQuery, nil)
	}
	start := time.Now()
	var attempts int
	resp, err := rt.memberGetAttempts(ctx, m, pathQuery, &attempts)
	span := telemetry.SpanRecord{
		Target: m.primary, Op: pathQuery,
		Attempts: attempts, Duration: time.Since(start),
	}
	if err != nil {
		span.Err = err.Error()
	}
	tr.Add(span)
	return resp, err
}

// memberGetAttempts is memberGet's retry loop; when counted is
// non-nil it receives the number of attempts actually issued.
func (rt *Router) memberGetAttempts(ctx context.Context, m *member, pathQuery string, counted *int) (*http.Response, error) {
	attempts := 1 + rt.cfg.ReadRetries
	backoff := rt.cfg.RetryBackoff
	useFollower := m.follower != "" && m.down.Load()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if counted != nil {
			*counted = attempt + 1
		}
		if attempt > 0 {
			m.readRetries.Add(1)
			if sleepJittered(ctx, backoff) != nil {
				break // the deadline died during backoff
			}
			backoff *= 2
		}
		target := m.primary
		if useFollower {
			target = m.follower
		}
		resp, err := rt.get(ctx, target+pathQuery)
		switch {
		case err == nil && resp.StatusCode >= 500 && attempt < attempts-1:
			// The member answered but unhealthily; drain and retry, on
			// the other replica when one exists.
			lastErr = fmt.Errorf("%s: %s returned %d", target, pathQuery, resp.StatusCode)
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
		case err == nil:
			if useFollower {
				m.failovers.Add(1)
			} else if m.down.Load() && m.down.Swap(false) {
				// Optimistic read against a down primary succeeded: the
				// member recovered between probe ticks.
				rt.cfg.Logf("cluster: member %s back up (read succeeded)", m.primary)
			}
			return resp, nil
		case ctx.Err() != nil:
			// Cancelled or out of deadline budget — not a member verdict,
			// so the member's health view is left alone.
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				m.deadlineFails.Add(1)
			}
			return nil, err
		default:
			lastErr = err
			if !useFollower {
				m.setErr(err)
				if !m.down.Swap(true) {
					rt.cfg.Logf("cluster: member %s down (read failed): %v", m.primary, err)
				}
			}
		}
		if m.follower != "" {
			useFollower = !useFollower
		}
	}
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			m.deadlineFails.Add(1)
		}
		return nil, fmt.Errorf("member %s: %w", m.primary, err)
	}
	if m.follower == "" {
		return nil, fmt.Errorf("member %s down (no follower): %w", m.primary, lastErr)
	}
	return nil, fmt.Errorf("member %s down and follower %s failed: %w", m.primary, m.follower, lastErr)
}

// memberGetJSON runs memberGet and decodes a 200 JSON body into out,
// through a hard cap of Config.MaxResponseBytes — a huge (or
// malicious) member response fails the one member's read instead of
// ballooning the router's heap mid-merge.
func (rt *Router) memberGetJSON(ctx context.Context, m *member, pathQuery string, out interface{}) error {
	resp, err := rt.memberGet(ctx, m, pathQuery)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("member %s: %s returned %d: %s",
			m.primary, pathQuery, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	// Read through the cap plus one byte: a decode that touches the
	// extra byte proves the body exceeded the cap, whether or not the
	// truncated prefix happened to parse.
	lr := &io.LimitedReader{R: resp.Body, N: rt.cfg.MaxResponseBytes + 1}
	if err := json.NewDecoder(lr).Decode(out); err != nil || lr.N <= 0 {
		if lr.N <= 0 {
			return fmt.Errorf("member %s: %s response exceeds %d bytes",
				m.primary, pathQuery, rt.cfg.MaxResponseBytes)
		}
		return fmt.Errorf("member %s: %s: %w", m.primary, pathQuery, err)
	}
	return nil
}

// settleScatter resolves a scatter's per-member outcomes under the
// request's mode. Strict mode fails the whole query on any member
// error (the old all-or-nothing contract). Partial mode tolerates
// failures while at least one member answered: the failed members are
// logged, counted as degraded, and returned as the sorted missing
// list for the response's partial markers. All members failing is an
// error in either mode — there is nothing to serve.
func (rt *Router) settleScatter(members []*member, errs []error, partial bool) ([]string, error) {
	var firstErr error
	var missing []string
	for i, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		missing = append(missing, members[i].primary)
	}
	if firstErr == nil {
		return nil, nil
	}
	if !partial || len(missing) == len(members) {
		return nil, firstErr
	}
	for i, err := range errs {
		if err != nil {
			members[i].degradedReads.Add(1)
			rt.cfg.Logf("cluster: partial read served without member %s: %v", members[i].primary, err)
		}
	}
	rt.met.partialReads.Inc()
	sort.Strings(missing)
	return missing, nil
}

// markPartial stamps a partial-mode response with its coverage:
// X-Gss-Partial is always set (true or false) so clients can assert
// on it, X-Gss-Missing-Members and the body fields appear only when
// coverage actually degraded. res may be nil for array-shaped
// payloads (/heavy), whose markers ride the headers alone.
func markPartial(w http.ResponseWriter, res map[string]interface{}, missing []string) {
	degraded := len(missing) > 0
	w.Header().Set(headerPartial, strconv.FormatBool(degraded))
	if degraded {
		w.Header().Set(headerMissing, strings.Join(missing, ","))
	}
	if res != nil {
		res["partial"] = degraded
		if degraded {
			res["missing_members"] = missing
		}
	}
}
