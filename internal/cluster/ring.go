// Package cluster turns N independent gss-server processes into one
// logical Graph Stream Sketch. The pieces:
//
//   - Ring: rendezvous hashing over member base URLs. Items are
//     partitioned by source node, so every edge (and with it a node's
//     whole successor set) lives on exactly one member.
//   - Router: an http.Handler exposing the same API as internal/server.
//     Writes are split per member; queries that a single partition can
//     answer are proxied straight through; global ones are
//     scatter-gathered and merged.
//   - A health prober that marks members down via their /healthz and
//     fails reads over to a member's configured follower replica.
//     Followers answer 403 on writes, so the router instead answers 429
//     for a down partition's writes — the same backpressure convention
//     the ingest queue uses: the producer backs off and retries.
//
// Members are completely unmodified gss-server instances, so the router
// composes with every backend (single/concurrent/sharded/windowed) and
// with checkpointing and replication. Membership is no longer fixed:
// with Config.AllowMembershipChanges the router live-migrates the
// re-mapped partitions on POST /cluster/members (add) and
// POST /cluster/drain (remove) — see migrate.go for the copy /
// catch-up / double-write handoff / cutover protocol.
package cluster

import (
	"fmt"
	"strings"

	"repro/internal/hashing"
)

// Ring is a rendezvous (highest-random-weight) hash over the member
// base URLs. Every key gets an independent pseudo-random permutation of
// the members; the highest-scoring member owns the key. Unlike a mod-N
// ring, adding or removing one member only re-maps the keys that member
// owned — the property that will matter once membership changes grow a
// migration story.
type Ring struct {
	members []string
	seeds   []uint64 // Hash64(member URL), mixed into each key's score
}

// NewRing builds a ring over the member base URLs (trailing slashes are
// trimmed, so "http://a:8080/" and "http://a:8080" are the same
// member). At least one member is required; duplicates are rejected
// because two members with the same seed would shadow each other.
func NewRing(members []string) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	r := &Ring{
		members: make([]string, len(members)),
		seeds:   make([]uint64, len(members)),
	}
	seen := make(map[string]bool, len(members))
	for i, m := range members {
		m = NormalizeMember(m)
		if m == "" {
			return nil, fmt.Errorf("cluster: member %d is empty", i)
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
		seen[m] = true
		r.members[i] = m
		r.seeds[i] = hashing.Hash64(m)
	}
	return r, nil
}

// NormalizeMember canonicalizes a member base URL the way the ring
// does: surrounding whitespace and trailing slashes are dropped. Every
// piece of the system that derives rendezvous seeds from member URLs
// (the ring, the migrator's moving-key predicate, the server-side
// partition filter) must normalize identically, or the same key would
// appear to have two owners.
func NormalizeMember(m string) string {
	return strings.TrimRight(strings.TrimSpace(m), "/")
}

// Size reports the member count.
func (r *Ring) Size() int { return len(r.members) }

// Member returns the base URL of member i.
func (r *Ring) Member(i int) string { return r.members[i] }

// Members returns the normalized member base URLs in ring order.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Owner returns the index of the member that owns key. The score mixes
// the key hash with each member's seed, so ownership is a deterministic
// pure function of (key, member set) — every router over the same
// members routes identically, with no coordination.
func (r *Ring) Owner(key string) int {
	return r.OwnerHash(hashing.Hash64(key))
}

// OwnerHash is Owner for a key already reduced to its hashing.Hash64 —
// the binary ingest plane's routing entry point. GSB1 records carry
// H(src) in their fixed prefix, so the router scores members straight
// off the wire bytes without materializing (or re-hashing) the
// identifier. Owner(key) == OwnerHash(hashing.Hash64(key)) by
// construction, which is what keeps the two ingest planes partitioning
// a stream identically.
func (r *Ring) OwnerHash(kh uint64) int {
	return hashing.Rendezvous(r.seeds, kh)
}

// Index returns the position of the (normalized) member URL in the
// ring, or -1 when it is not a member.
func (r *Ring) Index(url string) int {
	url = NormalizeMember(url)
	for i, m := range r.members {
		if m == url {
			return i
		}
	}
	return -1
}
