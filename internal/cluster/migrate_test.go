package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultproxy"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Membership-change battery: the live-migration protocol under its
// equivalence oracle. Every test ends in diffObservables — whatever a
// migration (or its failure, or the router dying mid-way) did to the
// cluster, the query observables must still match a single unpartitioned
// server that saw the same stream.

// migrationMember starts a member fit to lose partitions: live migration
// fences the copy against the operation log, so losers need one.
func migrationMember(t *testing.T, backend string) *testMember {
	t.Helper()
	m := startMember(t, server.Options{Backend: backend,
		LogDir: t.TempDir(), LogSyncEvery: -1})
	t.Cleanup(m.stop)
	return m
}

// migrationCluster builds n log-backed members and a router with the
// membership-change endpoints enabled.
func migrationCluster(t *testing.T, n int, backend string, cfg Config) ([]*testMember, []string, *Router, string) {
	t.Helper()
	members := make([]*testMember, n)
	urls := make([]string, n)
	for i := range members {
		members[i] = migrationMember(t, backend)
		urls[i] = members[i].ts.URL
	}
	cfg.Members = urls
	cfg.AllowMembershipChanges = true
	rt, ts := newTestRouter(t, cfg)
	return members, urls, rt, ts.URL
}

// faultMember is a real server behind a faultproxy front: it can be
// crash-killed (requests abort at the transport level; the state and the
// proxy's port survive, unlike testMember.die), slowed down per path to
// widen migration phases into testable windows, and made to reject a
// path with a status code without the backend ever seeing the request.
// The router is pointed at fm.url — the proxy — never at the backend.
type faultMember struct {
	srv     *server.Server
	backend *httptest.Server
	proxy   *faultproxy.Proxy
	url     string // the proxy front: the member URL the cluster sees

	mu     sync.Mutex
	delay  map[string]time.Duration
	reject map[string]int

	stopOnce sync.Once
}

func startFaultMember(t *testing.T, opt server.Options) *faultMember {
	t.Helper()
	opt.Logf = silentLogf
	srv, err := server.NewWithOptions(testCfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	backend := httptest.NewServer(srv.Handler())
	proxy, err := faultproxy.New(backend.URL, faultproxy.Options{Logf: silentLogf})
	if err != nil {
		backend.Close()
		srv.Close()
		t.Fatal(err)
	}
	fm := &faultMember{srv: srv, backend: backend, proxy: proxy, url: proxy.URL(),
		delay: make(map[string]time.Duration), reject: make(map[string]int)}
	t.Cleanup(fm.stop)
	return fm
}

func (fm *faultMember) stop() {
	fm.stopOnce.Do(func() {
		fm.proxy.Close()
		fm.backend.CloseClientConnections()
		fm.backend.Close()
		fm.srv.Close()
	})
}

// kill simulates a crash: every connection dies and new requests abort
// without a response, but the address stays bound (no impostor can take
// it) and the in-memory state survives for revive.
func (fm *faultMember) kill() { fm.proxy.Kill() }

func (fm *faultMember) revive() { fm.proxy.Revive() }

// waitIdle blocks until no request is inside the member's front —
// needed when a delayed request from a dead router could otherwise
// land after a successor's recovery already reset the member.
func (fm *faultMember) waitIdle(t *testing.T) {
	t.Helper()
	if !fm.proxy.WaitIdle(15 * time.Second) {
		t.Fatalf("fault member never went idle (%d requests in flight)", fm.proxy.Inflight())
	}
}

func (fm *faultMember) setDelay(path string, d time.Duration) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if d == 0 {
		delete(fm.delay, path)
	} else {
		fm.delay[path] = d
	}
	fm.applyLocked()
}

func (fm *faultMember) setReject(path string, code int) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if code == 0 {
		delete(fm.reject, path)
	} else {
		fm.reject[path] = code
	}
	fm.applyLocked()
}

// applyLocked rebuilds the proxy's fault set from the delay/reject
// maps. Caller holds fm.mu.
func (fm *faultMember) applyLocked() {
	var faults []faultproxy.Fault
	for path, d := range fm.delay {
		faults = append(faults, faultproxy.Fault{Path: path, Prob: 1, Latency: d})
	}
	for path, code := range fm.reject {
		faults = append(faults, faultproxy.Fault{Path: path, Prob: 1, Status: code})
	}
	fm.proxy.Set(faults...)
}

// ingestChunks streams items through the router in small /ingest
// requests. It returns errors instead of failing the test, so concurrent
// writer goroutines can use it (t.Fatalf is main-goroutine-only).
func ingestChunks(base string, items []stream.Item, chunk int) error {
	for s := 0; s < len(items); s += chunk {
		e := min(s+chunk, len(items))
		var buf bytes.Buffer
		if err := stream.EncodeNDJSON(&buf, items[s:e]); err != nil {
			return err
		}
		resp, err := http.Post(base+"/ingest", "application/x-ndjson", &buf)
		if err != nil {
			return err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("ingest chunk: status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
		}
		var res struct {
			Ingested int64 `json:"ingested"`
		}
		if err := json.Unmarshal(raw, &res); err != nil {
			return fmt.Errorf("ingest chunk: %v (%s)", err, raw)
		}
		if res.Ingested != int64(e-s) {
			return fmt.Errorf("ingest chunk: %d of %d confirmed", res.Ingested, e-s)
		}
	}
	return nil
}

func ingestAll(t *testing.T, base string, items []stream.Item) {
	t.Helper()
	if err := ingestChunks(base, items, 1<<30); err != nil {
		t.Fatal(err)
	}
}

// waitCluster polls the router's stats until cond accepts them.
func waitCluster(t *testing.T, rt *Router, what string, cond func(ClusterStats) bool) ClusterStats {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := rt.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			raw, _ := json.Marshal(st)
			t.Fatalf("timeout waiting for %s: %s", what, raw)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// changeMembership runs one blocking membership change and demands it
// succeeds.
func changeMembership(t *testing.T, routerURL, endpoint, memberURL string) MigrationStatus {
	t.Helper()
	var st MigrationStatus
	resp, raw := postBody(t, routerURL+endpoint+"?wait=1",
		fmt.Sprintf(`{"url":%q}`, memberURL), &st)
	if resp.StatusCode != http.StatusOK || st.Outcome != "done" {
		t.Fatalf("%s %s: status %d, outcome %q: %s",
			endpoint, memberURL, resp.StatusCode, st.Outcome, raw)
	}
	return st
}

func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	return reflect.DeepEqual(as, bs)
}

// TestMembershipEndpointValidation: the admin endpoints refuse what they
// must — disabled by default, POST-only, and every begin-time rejection
// (duplicate add, absent drain, last member, unreachable joiner) is a
// 4xx with a reason, leaving no migration registered.
func TestMembershipEndpointValidation(t *testing.T) {
	_, urls := startMembers(t, 2, sketch.BackendConcurrent)

	// Off by default: membership changes rewire write routing.
	_, offTS := newTestRouter(t, Config{Members: urls})
	off := offTS.URL
	resp, raw := postBody(t, off+"/cluster/members", fmt.Sprintf(`{"url":%q}`, urls[0]), nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("add without the flag: status %d (%s), want 403", resp.StatusCode, raw)
	}

	rt, tsrv := newTestRouter(t, Config{Members: urls, AllowMembershipChanges: true})
	ts := tsrv.URL
	if code := getJSON(t, ts+"/cluster/members", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /cluster/members: status %d, want 405", code)
	}
	reject := func(endpoint, body, wantSub string) {
		t.Helper()
		var e struct {
			Error string `json:"error"`
		}
		resp, raw := postBody(t, ts+endpoint, body, &e)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %s: status %d (%s), want 400", endpoint, body, resp.StatusCode, raw)
		}
		if !strings.Contains(e.Error, wantSub) {
			t.Fatalf("%s %s: error %q does not mention %q", endpoint, body, e.Error, wantSub)
		}
	}
	reject("/cluster/members", `{"url":`, "bad JSON")
	reject("/cluster/members", `{}`, "url is required")
	reject("/cluster/members", fmt.Sprintf(`{"url":%q}`, urls[1]), "already a member")
	reject("/cluster/drain", `{"url":"http://127.0.0.1:9/ghost"}`, "is not a member")

	// An unreachable joiner fails the synchronous preflight probe. The
	// address resets connections (holdPort) so the check is fast.
	dead := holdPort(t, "127.0.0.1:0")
	reject("/cluster/members", fmt.Sprintf(`{"url":"http://%s"}`, dead.Addr()), "not healthy")

	// Every rejection above must leave the router migration-free.
	if st := rt.Stats(); st.Migration != nil {
		t.Fatalf("a rejected change left a migration registered: %+v", st.Migration)
	}

	_, one := startMembers(t, 1, sketch.BackendConcurrent)
	_, lastTS := newTestRouter(t, Config{Members: one, AllowMembershipChanges: true})
	resp, raw = postBody(t, lastTS.URL+"/cluster/drain", fmt.Sprintf(`{"url":%q}`, one[0]), nil)
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(raw, []byte("last member")) {
		t.Fatalf("draining the last member: status %d (%s), want 400", resp.StatusCode, raw)
	}
}

// TestClusterMigrationAddEquivalence: the headline tentpole test — a
// 3-member cluster under a live write workload absorbs a fourth member,
// and afterwards every observable matches the single-node oracle. The
// joiner is deliberately slow on /insert so the copy, catch-up and
// handoff phases genuinely overlap the concurrent writes.
func TestClusterMigrationAddEquivalence(t *testing.T) {
	items := equivStream(250, 1800, 53)
	third := len(items) / 3
	pre, live, post := items[:third], items[third:2*third], items[2*third:]

	_, _, rt, routerURL := migrationCluster(t, 3, sketch.BackendConcurrent,
		Config{BatchSize: 64})
	joiner := startFaultMember(t, server.Options{Backend: sketch.BackendConcurrent,
		LogDir: t.TempDir(), LogSyncEvery: -1})
	joiner.setDelay("/insert", 4*time.Millisecond)

	ingestAll(t, routerURL, pre)

	writerErr := make(chan error, 1)
	go func() { writerErr <- ingestChunks(routerURL, live, 30) }()

	st := changeMembership(t, routerURL, "/cluster/members", joiner.url)
	if err := <-writerErr; err != nil {
		t.Fatalf("concurrent writer during add: %v", err)
	}
	if st.RingVersion != 2 || st.MovedEdges == 0 || st.ForwardedItems == 0 {
		t.Fatalf("add migration moved nothing: %+v", st)
	}

	ingestAll(t, routerURL, post)

	cs := rt.Stats()
	if cs.RingVersion != 2 || len(cs.Ring) != 4 {
		t.Fatalf("ring after add = v%d %v, want v2 with 4 members", cs.RingVersion, cs.Ring)
	}
	if got := joiner.srv.Sketch().Stats().Items; got == 0 {
		t.Fatal("joiner holds no items after the migration")
	}

	oracleURL := oracleOf(t, server.Options{Backend: sketch.BackendConcurrent}, items)
	diffObservables(t, routerURL, oracleURL, items, 701)
}

// TestClusterMigrationDrainEquivalence: the inverse — a 4-member cluster
// under load drains one member; its partitions (and its share of the
// item count, including the aggregation delta the copy compresses away)
// land on the survivors, and the observables still match the oracle.
func TestClusterMigrationDrainEquivalence(t *testing.T) {
	items := equivStream(250, 1800, 59)
	third := len(items) / 3
	pre, live, post := items[:third], items[third:2*third], items[2*third:]

	members, urls, rt, routerURL := migrationCluster(t, 4, sketch.BackendConcurrent,
		Config{BatchSize: 64})
	victim := 1

	ingestAll(t, routerURL, pre)
	if members[victim].srv.Sketch().Stats().Items == 0 {
		t.Fatal("victim member holds nothing; the drain would be vacuous")
	}

	writerErr := make(chan error, 1)
	go func() { writerErr <- ingestChunks(routerURL, live, 30) }()

	st := changeMembership(t, routerURL, "/cluster/drain", urls[victim])
	if err := <-writerErr; err != nil {
		t.Fatalf("concurrent writer during drain: %v", err)
	}
	if st.RingVersion != 2 || st.MovedEdges == 0 {
		t.Fatalf("drain migration moved nothing: %+v", st)
	}

	ingestAll(t, routerURL, post)

	cs := rt.Stats()
	if cs.RingVersion != 2 || len(cs.Ring) != 3 {
		t.Fatalf("ring after drain = v%d %v, want v2 with 3 members", cs.RingVersion, cs.Ring)
	}
	for _, u := range cs.Ring {
		if u == urls[victim] {
			t.Fatalf("drained member still in the ring: %v", cs.Ring)
		}
	}

	oracleURL := oracleOf(t, server.Options{Backend: sketch.BackendConcurrent}, items)
	diffObservables(t, routerURL, oracleURL, items, 733)
}

// TestClusterMigrationSaturatedCatchUp: writers that outpace the
// catch-up relay must not wedge the migration. The catch-up page size
// is shrunk below what a continuous writer sustains and one loser's
// /log is slowed, so the lag never reaches "one batch"; the relay must
// notice the lag has stopped shrinking, hand the bounded remainder to
// the fenced drain, and the migration still completes with the
// observables oracle-clean. Without the stalled-catch-up handover this
// scenario spins in catch-up until the round cap.
func TestClusterMigrationSaturatedCatchUp(t *testing.T) {
	items := equivStream(250, 1800, 61)
	third := len(items) / 3
	pre, live, post := items[:third], items[third:2*third], items[2*third:]

	defer func(old int) { catchUpFetch = old }(catchUpFetch)
	catchUpFetch = 64

	steady := []*testMember{
		migrationMember(t, sketch.BackendConcurrent),
		migrationMember(t, sketch.BackendConcurrent),
	}
	slow := startFaultMember(t, server.Options{Backend: sketch.BackendConcurrent,
		LogDir: t.TempDir(), LogSyncEvery: -1})
	slow.setDelay("/log", 15*time.Millisecond)
	urls := []string{steady[0].ts.URL, steady[1].ts.URL, slow.url}
	rt, ts := newTestRouter(t, Config{Members: urls,
		AllowMembershipChanges: true, BatchSize: 64})

	ingestAll(t, ts.URL, pre)

	// The writer replays the live slice until the change completes, so
	// the losers' logs keep growing through every catch-up round. Only
	// whole replays are written: the oracle must see the same stream.
	stop := make(chan struct{})
	writerErr := make(chan error, 1)
	replays := make(chan int, 1)
	go func() {
		n := 0
		defer func() { replays <- n }()
		for {
			select {
			case <-stop:
				writerErr <- nil
				return
			default:
			}
			if err := ingestChunks(ts.URL, live, 40); err != nil {
				writerErr <- err
				return
			}
			n++
		}
	}()

	joiner := migrationMember(t, sketch.BackendConcurrent)
	st := changeMembership(t, ts.URL, "/cluster/members", joiner.ts.URL)
	close(stop)
	if err := <-writerErr; err != nil {
		t.Fatalf("concurrent writer during saturated add: %v", err)
	}
	n := <-replays
	if n == 0 {
		t.Fatal("writer never completed a replay; the catch-up was not contested")
	}
	if st.ForwardedItems == 0 || st.MovedEdges == 0 {
		t.Fatalf("saturated add moved nothing: %+v", st)
	}

	cs := rt.Stats()
	if cs.RingVersion != 2 || len(cs.Ring) != 4 {
		t.Fatalf("ring after saturated add = v%d %v, want v2 with 4 members",
			cs.RingVersion, cs.Ring)
	}

	ingestAll(t, ts.URL, post)
	full := append([]stream.Item(nil), pre...)
	for i := 0; i < n; i++ {
		full = append(full, live...)
	}
	full = append(full, post...)
	oracleURL := oracleOf(t, server.Options{Backend: sketch.BackendConcurrent}, full)
	diffObservables(t, ts.URL, oracleURL, full, 941)
}

// TestClusterMigrationBackendSweep: add-then-drain under load, once per
// backend — migration treats members as black boxes, so the equivalence
// must hold over every sketch they can be built with. Slow (per-backend
// full migrations plus two diffs), hence gated off -short.
func TestClusterMigrationBackendSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("membership-change backend sweep skipped in -short")
	}
	items := equivStream(250, 2000, 67)
	half := len(items) / 2
	threeQ := half + len(items)/4

	for _, backend := range sketch.Backends() {
		t.Run(backend, func(t *testing.T) {
			opt := server.Options{Backend: backend, Shards: 4,
				// The windowed backend must hold the whole stream live so
				// the window equals the unbounded sketch (the conformance
				// convention).
				WindowSpan: 1 << 40, WindowGenerations: 4}
			memberOpt := func() server.Options {
				o := opt
				o.LogDir = t.TempDir()
				o.LogSyncEvery = -1
				return o
			}
			urls := make([]string, 3)
			for i := range urls {
				m := startMember(t, memberOpt())
				t.Cleanup(m.stop)
				urls[i] = m.ts.URL
			}
			rt, ts := newTestRouter(t, Config{Members: urls,
				AllowMembershipChanges: true, BatchSize: 64})

			ingestAll(t, ts.URL, items[:half])

			joiner := startMember(t, memberOpt())
			t.Cleanup(joiner.stop)
			writerErr := make(chan error, 1)
			go func() { writerErr <- ingestChunks(ts.URL, items[half:threeQ], 40) }()
			changeMembership(t, ts.URL, "/cluster/members", joiner.ts.URL)
			if err := <-writerErr; err != nil {
				t.Fatalf("writer during add: %v", err)
			}

			go func() { writerErr <- ingestChunks(ts.URL, items[threeQ:], 40) }()
			changeMembership(t, ts.URL, "/cluster/drain", urls[0])
			if err := <-writerErr; err != nil {
				t.Fatalf("writer during drain: %v", err)
			}

			cs := rt.Stats()
			if cs.RingVersion != 3 || len(cs.Ring) != 3 {
				t.Fatalf("ring after add+drain = v%d %v, want v3 with 3 members",
					cs.RingVersion, cs.Ring)
			}
			oracleURL := oracleOf(t, opt, items)
			diffObservables(t, ts.URL, oracleURL, items, 811)
		})
	}
}

// TestClusterMigrationKillSourceRollsBack: a source member crashing
// mid-snapshot-transfer fails the migration, the rollback scrubs the
// joiner back to empty, the ring stays at version 1 — and once the
// source is back, the same add succeeds and the observables match the
// oracle.
func TestClusterMigrationKillSourceRollsBack(t *testing.T) {
	items := equivStream(220, 1400, 71)

	steady := []*testMember{
		migrationMember(t, sketch.BackendConcurrent),
		migrationMember(t, sketch.BackendConcurrent),
	}
	source := startFaultMember(t, server.Options{Backend: sketch.BackendConcurrent,
		LogDir: t.TempDir(), LogSyncEvery: -1})
	source.setDelay("/partition/export", 150*time.Millisecond)
	urls := []string{steady[0].ts.URL, steady[1].ts.URL, source.url}

	rt, ts := newTestRouter(t, Config{Members: urls,
		AllowMembershipChanges: true, BatchSize: 64,
		ProbeInterval: 25 * time.Millisecond})
	ingestAll(t, ts.URL, items)

	joiner := migrationMember(t, sketch.BackendConcurrent)
	resp, raw := postBody(t, ts.URL+"/cluster/members",
		fmt.Sprintf(`{"url":%q}`, joiner.ts.URL), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("starting add: status %d (%s), want 202", resp.StatusCode, raw)
	}
	waitCluster(t, rt, "migration to start", func(st ClusterStats) bool {
		return st.Migration != nil
	})
	source.kill() // the in-flight (slowed) export aborts mid-transfer

	st := waitCluster(t, rt, "rollback to finish", func(st ClusterStats) bool {
		return st.Migration == nil && st.LastMigration != nil
	})
	if st.LastMigration.Outcome != "failed" || st.LastMigration.Error == "" {
		t.Fatalf("migration with a dead source: %+v", st.LastMigration)
	}
	if st.RingVersion != 1 || len(st.Ring) != 3 {
		t.Fatalf("ring after rollback = v%d %v, want v1 with 3 members", st.RingVersion, st.Ring)
	}
	if got := joiner.srv.Sketch().Stats().Items; got != 0 {
		t.Fatalf("joiner holds %d items after the rollback scrub, want 0", got)
	}

	// Heal the source and retry: the same change must now complete.
	source.revive()
	source.setDelay("/partition/export", 0)
	idx := memberIndex(t, rt, source.url)
	waitMember(t, rt, idx, "source healthy again", func(ms MemberStatus) bool {
		return ms.Healthy
	})
	changeMembership(t, ts.URL, "/cluster/members", joiner.ts.URL)

	cs := rt.Stats()
	if cs.RingVersion != 2 || len(cs.Ring) != 4 {
		t.Fatalf("ring after retried add = v%d %v, want v2 with 4 members", cs.RingVersion, cs.Ring)
	}
	oracleURL := oracleOf(t, server.Options{Backend: sketch.BackendConcurrent}, items)
	diffObservables(t, ts.URL, oracleURL, items, 877)
}

// TestClusterMigrationKillDestinationRollsBack: the destination crashing
// mid-copy (items already forwarded) fails the migration; the rollback
// waits out the dead gainer, scrubs it once it revives, and the cluster
// is exactly what it was — proven by the oracle diff and by the retried
// add succeeding.
func TestClusterMigrationKillDestinationRollsBack(t *testing.T) {
	items := equivStream(220, 1400, 79)

	_, _, rt, routerURL := migrationCluster(t, 3, sketch.BackendConcurrent,
		Config{BatchSize: 64, ProbeInterval: 25 * time.Millisecond})
	ingestAll(t, routerURL, items)

	joiner := startFaultMember(t, server.Options{Backend: sketch.BackendConcurrent,
		LogDir: t.TempDir(), LogSyncEvery: -1})
	joiner.setDelay("/insert", 10*time.Millisecond)

	resp, raw := postBody(t, routerURL+"/cluster/members",
		fmt.Sprintf(`{"url":%q}`, joiner.url), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("starting add: status %d (%s), want 202", resp.StatusCode, raw)
	}
	waitCluster(t, rt, "items to reach the joiner", func(st ClusterStats) bool {
		return st.Migration != nil && st.Migration.ForwardedItems > 0
	})
	joiner.kill()

	// The rollback retries the unreachable gainer; it can only finish
	// after the revive, and must leave the joiner scrubbed to empty.
	waitCluster(t, rt, "rollback to wait on the dead gainer", func(st ClusterStats) bool {
		return st.Migration != nil && st.Migration.Phase == "rollback"
	})
	joiner.revive()
	st := waitCluster(t, rt, "rollback to finish", func(st ClusterStats) bool {
		return st.Migration == nil && st.LastMigration != nil
	})
	if st.LastMigration.Outcome != "failed" {
		t.Fatalf("migration with a dead destination: %+v", st.LastMigration)
	}
	if st.RingVersion != 1 || len(st.Ring) != 3 {
		t.Fatalf("ring after rollback = v%d %v, want v1 with 3 members", st.RingVersion, st.Ring)
	}
	if got := joiner.srv.Sketch().Stats().Items; got != 0 {
		t.Fatalf("joiner holds %d items after the rollback scrub, want 0", got)
	}

	joiner.setDelay("/insert", 0)
	changeMembership(t, routerURL, "/cluster/members", joiner.url)
	oracleURL := oracleOf(t, server.Options{Backend: sketch.BackendConcurrent}, items)
	diffObservables(t, routerURL, oracleURL, items, 907)
}

// TestRouterRestartRollsBackMigration: a router dying mid-copy leaves an
// uncommitted journal; its successor (same StateDir) must come up on the
// OLD ring, scrub the joiner in the background, clear the journal, and
// serve a cluster indistinguishable from one that never tried.
func TestRouterRestartRollsBackMigration(t *testing.T) {
	items := equivStream(220, 1400, 83)
	stateDir := t.TempDir()

	urls := make([]string, 3)
	for i := range urls {
		m := migrationMember(t, sketch.BackendConcurrent)
		urls[i] = m.ts.URL
	}
	cfg := Config{Members: urls, AllowMembershipChanges: true,
		BatchSize: 64, StateDir: stateDir}
	rt1, ts1 := newTestRouter(t, cfg)
	ingestAll(t, ts1.URL, items)

	joiner := startFaultMember(t, server.Options{Backend: sketch.BackendConcurrent,
		LogDir: t.TempDir(), LogSyncEvery: -1})
	joiner.setDelay("/insert", 10*time.Millisecond)

	resp, raw := postBody(t, ts1.URL+"/cluster/members",
		fmt.Sprintf(`{"url":%q}`, joiner.url), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("starting add: status %d (%s), want 202", resp.StatusCode, raw)
	}
	waitCluster(t, rt1, "items to reach the joiner", func(st ClusterStats) bool {
		return st.Migration != nil && st.Migration.ForwardedItems > 0
	})
	rt1.Close() // dies mid-copy; the journal must survive for the successor

	if _, err := os.Stat(filepath.Join(stateDir, journalFile)); err != nil {
		t.Fatalf("no journal after a mid-migration close: %v", err)
	}

	joiner.setDelay("/insert", 0)
	// A delayed forward from rt1 may still be inside the joiner's
	// handler; let it land before rt2's recovery scrubs, or it would
	// resurrect items after the scrub.
	joiner.waitIdle(t)
	rt2, ts2 := newTestRouter(t, cfg)
	st := waitCluster(t, rt2, "recovered rollback to finish", func(st ClusterStats) bool {
		return st.Migration == nil && st.LastMigration != nil
	})
	if st.LastMigration.Outcome != "failed" {
		t.Fatalf("recovered migration: %+v", st.LastMigration)
	}
	if st.RingVersion != 1 || !sameMembers(st.Ring, urls) {
		t.Fatalf("recovered ring = v%d %v, want v1 over the original members", st.RingVersion, st.Ring)
	}
	if got := joiner.srv.Sketch().Stats().Items; got != 0 {
		t.Fatalf("joiner holds %d items after the recovered rollback, want 0", got)
	}
	if _, err := os.Stat(filepath.Join(stateDir, journalFile)); !os.IsNotExist(err) {
		t.Fatalf("journal not cleared after the recovered rollback: %v", err)
	}

	oracleURL := oracleOf(t, server.Options{Backend: sketch.BackendConcurrent}, items)
	diffObservables(t, ts2.URL, oracleURL, items, 911)
}

// TestRouterRestartRollsForwardCommittedMigration: once the journal
// records the cutover, a membership change only completes. The router is
// killed while a loser refuses its post-cutover /partition/drop; the
// successor must come up on the NEW ring, finish the remaining drops
// exactly once each, persist the member list, and diff clean.
func TestRouterRestartRollsForwardCommittedMigration(t *testing.T) {
	items := equivStream(220, 1400, 89)
	stateDir := t.TempDir()

	steady := []*testMember{
		migrationMember(t, sketch.BackendConcurrent),
		migrationMember(t, sketch.BackendConcurrent),
	}
	stubborn := startFaultMember(t, server.Options{Backend: sketch.BackendConcurrent,
		LogDir: t.TempDir(), LogSyncEvery: -1})
	// Reject — not delay — the drop: a 503 never runs the handler, so the
	// drop's item subtraction cannot half-apply across the restart.
	stubborn.setReject("/partition/drop", http.StatusServiceUnavailable)
	urls := []string{steady[0].ts.URL, steady[1].ts.URL, stubborn.url}

	cfg := Config{Members: urls, AllowMembershipChanges: true,
		BatchSize: 64, StateDir: stateDir}
	rt1, ts1 := newTestRouter(t, cfg)
	ingestAll(t, ts1.URL, items)

	joiner := migrationMember(t, sketch.BackendConcurrent)
	resp, raw := postBody(t, ts1.URL+"/cluster/members",
		fmt.Sprintf(`{"url":%q}`, joiner.ts.URL), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("starting add: status %d (%s), want 202", resp.StatusCode, raw)
	}
	waitCluster(t, rt1, "cutover to commit", func(st ClusterStats) bool {
		return st.Migration != nil && st.Migration.Phase == "drop"
	})
	time.Sleep(100 * time.Millisecond) // let some drops land, some retry
	rt1.Close()

	if _, err := os.Stat(filepath.Join(stateDir, journalFile)); err != nil {
		t.Fatalf("no journal after a mid-drop close: %v", err)
	}

	stubborn.setReject("/partition/drop", 0)
	rt2, ts2 := newTestRouter(t, cfg)
	st := waitCluster(t, rt2, "recovered roll-forward to finish", func(st ClusterStats) bool {
		return st.Migration == nil && st.LastMigration != nil
	})
	if st.LastMigration.Outcome != "done" {
		t.Fatalf("recovered committed migration: %+v", st.LastMigration)
	}
	if st.RingVersion != 2 || len(st.Ring) != 4 {
		t.Fatalf("recovered ring = v%d %v, want v2 with 4 members", st.RingVersion, st.Ring)
	}
	if _, err := os.Stat(filepath.Join(stateDir, journalFile)); !os.IsNotExist(err) {
		t.Fatalf("journal not cleared after the roll-forward: %v", err)
	}
	var sm savedMembers
	data, err := os.ReadFile(filepath.Join(stateDir, membersFile))
	if err != nil {
		t.Fatalf("no persisted member list after the roll-forward: %v", err)
	}
	if err := json.Unmarshal(data, &sm); err != nil || len(sm.Members) != 4 || sm.RingVersion != 2 {
		t.Fatalf("persisted member list = %s (err %v), want 4 members at v2", data, err)
	}

	oracleURL := oracleOf(t, server.Options{Backend: sketch.BackendConcurrent}, items)
	diffObservables(t, ts2.URL, oracleURL, items, 919)
}

// TestRouterCloseDuringMigration: the repo's loop-ownership convention
// applied to the migrator — Close during an in-flight migration cancels
// the copy loop, the rollback's retry loops, and every fan-out, with the
// goroutine count returning to baseline.
func TestRouterCloseDuringMigration(t *testing.T) {
	before := runtime.NumGoroutine()
	client := &http.Client{}

	urls := make([]string, 3)
	var stops []func()
	for i := range urls {
		m := startMember(t, server.Options{Backend: sketch.BackendConcurrent,
			LogDir: t.TempDir(), LogSyncEvery: -1})
		stops = append(stops, m.stop)
		urls[i] = m.ts.URL
	}
	joiner := startFaultMember(t, server.Options{Backend: sketch.BackendConcurrent})
	joiner.setDelay("/insert", 25*time.Millisecond)

	rt, err := New(Config{Members: urls, AllowMembershipChanges: true,
		BatchSize: 32, ProbeInterval: 10 * time.Millisecond,
		Client: client, Logf: silentLogf})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := stream.EncodeNDJSON(&buf, equivStream(200, 1200, 97)); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/ingest", &buf))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/cluster/members",
		strings.NewReader(fmt.Sprintf(`{"url":%q}`, joiner.url))))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("starting add: status %d: %s", rec.Code, rec.Body)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := rt.Stats()
		if st.Migration != nil && st.Migration.ForwardedItems > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("migration never started forwarding")
		}
		time.Sleep(2 * time.Millisecond)
	}

	rt.Close() // must cancel the in-flight copy and the rollback retries
	st := rt.Stats()
	if st.Migration != nil {
		t.Fatalf("migration still registered after Close: %+v", st.Migration)
	}
	if st.LastMigration == nil || st.LastMigration.Outcome != "failed" {
		t.Fatalf("cancelled migration not recorded as failed: %+v", st.LastMigration)
	}
	rt.Close() // idempotent

	joiner.stop()
	for _, stop := range stops {
		stop()
	}
	waitForGoroutines(t, before, client.CloseIdleConnections)
}

// TestClusterStatsCoherentDuringMigration: a /cluster/stats poll during
// a membership change must never observe a half-applied ring — the ring
// is exactly the old list or exactly the new one, the version matches
// the list it claims, and versions never go backwards. A second change
// attempted mid-flight answers 409.
func TestClusterStatsCoherentDuringMigration(t *testing.T) {
	items := equivStream(220, 1400, 101)
	_, urls, _, routerURL := migrationCluster(t, 3, sketch.BackendConcurrent,
		Config{BatchSize: 64})
	ingestAll(t, routerURL, items)

	joiner := startFaultMember(t, server.Options{Backend: sketch.BackendConcurrent,
		LogDir: t.TempDir(), LogSyncEvery: -1})
	joiner.setDelay("/insert", 10*time.Millisecond)
	newList := append(append([]string(nil), urls...), joiner.url)

	resp, raw := postBody(t, routerURL+"/cluster/members",
		fmt.Sprintf(`{"url":%q}`, joiner.url), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("starting add: status %d (%s), want 202", resp.StatusCode, raw)
	}

	var lastVersion int64
	sawInFlight, checked409 := false, false
	deadline := time.Now().Add(15 * time.Second)
	for {
		var st ClusterStats
		if code := getJSON(t, routerURL+"/cluster/stats", &st); code != http.StatusOK {
			t.Fatalf("/cluster/stats during migration: status %d", code)
		}
		if st.RingVersion < lastVersion {
			t.Fatalf("ring version went backwards: %d after %d", st.RingVersion, lastVersion)
		}
		lastVersion = st.RingVersion
		switch st.RingVersion {
		case 1:
			if !sameMembers(st.Ring, urls) {
				t.Fatalf("v1 ring is not the old member list: %v", st.Ring)
			}
		case 2:
			if !sameMembers(st.Ring, newList) {
				t.Fatalf("v2 ring is not the new member list: %v", st.Ring)
			}
		default:
			t.Fatalf("impossible ring version %d", st.RingVersion)
		}
		if st.Migration != nil {
			sawInFlight = true
			if st.Migration.Mode != "add" || st.Migration.RingVersion != 2 {
				t.Fatalf("in-flight migration block inconsistent: %+v", st.Migration)
			}
			if !checked409 {
				checked409 = true
				r2, raw2 := postBody(t, routerURL+"/cluster/drain",
					fmt.Sprintf(`{"url":%q}`, urls[0]), nil)
				if r2.StatusCode != http.StatusConflict {
					t.Fatalf("second change mid-flight: status %d (%s), want 409",
						r2.StatusCode, raw2)
				}
			}
		}
		if st.Migration == nil && st.LastMigration != nil {
			if st.LastMigration.Outcome != "done" {
				t.Fatalf("migration failed under the stats poll: %+v", st.LastMigration)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("migration never finished under the stats poll")
		}
	}
	if !sawInFlight {
		t.Fatal("the poll never observed the migration in flight; slow the joiner down")
	}
	if !checked409 {
		t.Fatal("the 409 probe never ran")
	}
}
