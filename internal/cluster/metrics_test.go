package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// The telemetry contract the dashboards depend on: both exposition
// endpoints stay strictly parseable, and the family set — which is
// registered unconditionally, never per-configuration — matches the
// committed golden list exactly. A renamed or dropped family breaks
// someone's alerts silently; this test makes it break loudly in CI
// instead. Refresh after an intentional change with
//
//	GSS_UPDATE_GOLDEN=1 go test ./internal/cluster -run TestMetricsFamiliesGolden

const goldenFamiliesFile = "testdata/metrics_families.golden"

// scrapeFamilies fetches url, validates the body against the strict
// exposition grammar, and returns the sorted family names.
func scrapeFamilies(t *testing.T, url string) []string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scraping %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scraping %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := telemetry.Validate(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("exposition from %s is malformed: %v\nbody:\n%s", url, err, body)
	}
	sort.Strings(fams)
	return fams
}

func TestMetricsFamiliesGolden(t *testing.T) {
	members, urls := startMembers(t, 3, "concurrent")
	_, front := newTestRouter(t, Config{Members: urls, SpillDir: t.TempDir()})

	// Move some traffic through every layer so validation sees live
	// series, not just zeros: inserts fan out to members, a scatter
	// query exercises the read plane.
	postBody(t, front.URL+"/insert", `{"src":"a","dst":"b","weight":2}`, nil)
	var st struct{ Items int64 }
	if code := getJSON(t, front.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats: %d", code)
	}

	var got []string
	for _, fam := range scrapeFamilies(t, front.URL+"/metrics") {
		got = append(got, "router "+fam)
	}
	for _, fam := range scrapeFamilies(t, members[0].ts.URL+"/metrics") {
		got = append(got, "member "+fam)
	}

	if os.Getenv("GSS_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenFamiliesFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFamiliesFile,
			[]byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d families)", goldenFamiliesFile, len(got))
		return
	}

	raw, err := os.ReadFile(goldenFamiliesFile)
	if err != nil {
		t.Fatalf("reading golden list (refresh with GSS_UPDATE_GOLDEN=1): %v", err)
	}
	var want []string
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			want = append(want, line)
		}
	}

	wantSet := make(map[string]bool, len(want))
	for _, f := range want {
		wantSet[f] = true
	}
	gotSet := make(map[string]bool, len(got))
	for _, f := range got {
		gotSet[f] = true
	}
	var diff []string
	for _, f := range want {
		if !gotSet[f] {
			diff = append(diff, "missing: "+f)
		}
	}
	for _, f := range got {
		if !wantSet[f] {
			diff = append(diff, "unexpected: "+f)
		}
	}
	if len(diff) > 0 {
		t.Fatalf("metric family set drifted from %s (refresh with GSS_UPDATE_GOLDEN=1 after an intentional change):\n  %s",
			goldenFamiliesFile, strings.Join(diff, "\n  "))
	}
}

// TestMetricsCountersMove pins the exposition to the traffic it
// describes: the request counter for a route reflects the requests the
// test just issued, and per-member ingest state is visible.
func TestMetricsCountersMove(t *testing.T) {
	_, urls := startMembers(t, 2, "concurrent")
	_, front := newTestRouter(t, Config{Members: urls})

	const n = 5
	for i := 0; i < n; i++ {
		postBody(t, front.URL+"/insert",
			fmt.Sprintf(`{"src":"s%d","dst":"d%d","weight":1}`, i, i), nil)
	}
	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	want := fmt.Sprintf(`gss_http_requests_total{route="/insert",class="2xx"} %d`, n)
	if !strings.Contains(string(body), want) {
		t.Fatalf("router /metrics missing %q:\n%s", want, body)
	}
	for _, u := range urls {
		if !strings.Contains(string(body), fmt.Sprintf(`gss_cluster_member_up{member=%q} 1`, u)) {
			t.Fatalf("router /metrics missing up gauge for %s", u)
		}
	}
}
