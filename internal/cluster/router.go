package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes the cluster a Router fronts.
type Config struct {
	// Members are the base URLs of the gss-server primaries that
	// partition the stream. The order is part of cluster identity only
	// insofar as the URLs are: ownership is a pure function of
	// (source node, member URL set).
	Members []string
	// Failover maps a member base URL to the base URL of its follower
	// replica (a gss-server started with -follow pointing at the
	// member). While the member is down, reads for its partition are
	// served by the follower; writes answer 429 until the member
	// returns, because followers reject writes.
	Failover map[string]string
	// ProbeInterval is how often the health prober polls every member's
	// /healthz (default 2s). A failed probe — or a failed proxied
	// request — marks the member down; a successful one marks it up.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default: ProbeInterval,
	// capped at 2s).
	ProbeTimeout time.Duration
	// BatchSize is the /ingest decode batch size, overridable per
	// request with ?batch=N (default 512). Spill replay also forwards
	// in batches of this size.
	BatchSize int
	// SpillDir, when set, makes the router durably absorb writes for
	// down partitions instead of answering 429: each member gets an
	// append-only spill log under this directory, fsynced before the
	// write is acknowledged, and replayed into the member when the
	// prober sees it healthy again. See spill.go.
	SpillDir string
	// SpillMaxBytes bounds one member's spill log (default 64 MiB).
	// At the cap the router reverts to 429 + Retry-After.
	SpillMaxBytes int64
	// Client issues all member requests. Defaults to a dedicated client
	// with per-host keep-alive sized for fan-outs.
	Client *http.Client
	// Logf receives operational warnings (member state transitions,
	// failed fan-outs). Defaults to log.Printf; inject to route or
	// silence.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
		if c.ProbeTimeout > 2*time.Second {
			c.ProbeTimeout = 2 * time.Second
		}
	}
	if c.BatchSize < 1 {
		c.BatchSize = 512
	}
	if c.Client == nil {
		// A zero-value Transport would wait on raw OS timeouts (minutes)
		// for a silently dead member; bound the connect and header wait
		// like http.DefaultTransport does so reads issued between probe
		// ticks fail over in seconds. No overall request timeout — a
		// routed /ingest body may legitimately stream for a long time.
		c.Client = &http.Client{Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   10 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout:   10 * time.Second,
			ResponseHeaderTimeout: 30 * time.Second,
			MaxIdleConns:          64,
			MaxIdleConnsPerHost:   16,
		}}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// member is one partition of the cluster: a primary URL, an optional
// follower URL, and the router's view of the primary's health.
type member struct {
	primary  string
	follower string // "" when the partition has no replica
	spill    *spill // nil unless Config.SpillDir is set

	down atomic.Bool // router's view of the primary; false at start

	probes     atomic.Int64
	probeFails atomic.Int64
	failovers  atomic.Int64 // reads the follower served

	mu      sync.Mutex
	lastErr string
	role    string // from the last successful /healthz probe
	backend string
}

func (m *member) setErr(err error) {
	m.mu.Lock()
	m.lastErr = err.Error()
	m.mu.Unlock()
}

// Router fronts a fixed set of gss-server members with the single-node
// HTTP API. See the package comment for the routing rules.
type Router struct {
	ring    *Ring
	members []*member
	cfg     Config

	// ctx is cancelled by Close; every member request and fan-out
	// goroutine is bound to it, so Close stops in-flight work.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup // the prober loop
	once   sync.Once
}

// New builds a Router over cfg.Members and starts its health prober.
// Call Close to stop the prober and cancel in-flight fan-outs.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Members)
	if err != nil {
		return nil, err
	}
	rt := &Router{ring: ring, cfg: cfg}
	rt.ctx, rt.cancel = context.WithCancel(context.Background())
	byURL := make(map[string]*member, ring.Size())
	for i := 0; i < ring.Size(); i++ {
		m := &member{primary: ring.Member(i)}
		if cfg.SpillDir != "" {
			sp, err := openSpill(cfg.SpillDir, m.primary, cfg.SpillMaxBytes, cfg.Logf)
			if err != nil {
				rt.closeSpills()
				rt.cancel()
				return nil, err
			}
			m.spill = sp
		}
		rt.members = append(rt.members, m)
		byURL[m.primary] = m
	}
	for primary, follower := range cfg.Failover {
		m, ok := byURL[strings.TrimRight(strings.TrimSpace(primary), "/")]
		if !ok {
			rt.closeSpills()
			rt.cancel()
			return nil, fmt.Errorf("cluster: failover for %q: not a member", primary)
		}
		f := strings.TrimRight(strings.TrimSpace(follower), "/")
		if f == "" {
			rt.closeSpills()
			rt.cancel()
			return nil, fmt.Errorf("cluster: failover for %q: empty follower URL", primary)
		}
		m.follower = f
	}
	rt.wg.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Close stops the health prober, cancels every in-flight member
// request, fan-out and spill replay, and closes the spill logs. The
// router must not receive requests afterwards.
func (rt *Router) Close() {
	rt.once.Do(func() {
		rt.cancel()
		rt.wg.Wait()
		rt.closeSpills()
	})
}

func (rt *Router) closeSpills() {
	for _, m := range rt.members {
		if m.spill != nil {
			m.spill.close()
		}
	}
}

// Ring exposes the partitioning ring (for tests and tooling).
func (rt *Router) Ring() *Ring { return rt.ring }

// owner returns the member owning key's partition.
func (rt *Router) owner(key string) *member { return rt.members[rt.ring.Owner(key)] }

// reqCtx derives a context that dies with either the request or the
// router, so Close cancels in-flight fan-outs without waiting for
// clients to hang up.
func (rt *Router) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(rt.ctx, cancel)
	return ctx, func() { stop(); cancel() }
}

// Handler returns the HTTP handler for the cluster-facing API. Every
// endpoint mirrors internal/server's wire shapes; /cluster/stats is the
// one addition.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/insert", rt.handleInsert)
	mux.HandleFunc("/ingest", rt.handleIngest)
	mux.HandleFunc("/edge", rt.proxyByKey("src"))
	mux.HandleFunc("/successors", rt.proxyByKey("v"))
	mux.HandleFunc("/precursors", rt.handlePrecursors)
	mux.HandleFunc("/nodes", rt.handleNodes)
	mux.HandleFunc("/nodeout", rt.proxyByKey("v"))
	mux.HandleFunc("/nodein", rt.handleNodeIn)
	mux.HandleFunc("/reachable", rt.handleReachable)
	mux.HandleFunc("/heavy", rt.handleHeavy)
	mux.HandleFunc("/stats", rt.handleStats)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/cluster/stats", rt.handleClusterStats)
	// Snapshots are a per-member affair: each member's sketch is an
	// independent partition, and a concatenation of snapshots is not a
	// snapshot. Operators snapshot/restore members directly.
	perMember := func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotImplemented,
			"%s is per-member: call it on a member, not the router", r.URL.Path)
	}
	mux.HandleFunc("/snapshot", perMember)
	mux.HandleFunc("/restore", perMember)
	mux.HandleFunc("/checkpoint", perMember)
	mux.HandleFunc("/replica/stats", perMember)
	return mux
}

// --- health probing and member request plumbing ---

func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	rt.probeAll() // first verdict immediately, not one interval late
	for {
		select {
		case <-rt.ctx.Done():
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, m := range rt.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			rt.probe(m)
		}(m)
	}
	wg.Wait()
}

func (rt *Router) probe(m *member) {
	ctx, cancel := context.WithTimeout(rt.ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	m.probes.Add(1)
	hz, err := rt.fetchHealthz(ctx, m.primary)
	if err != nil {
		m.probeFails.Add(1)
		m.setErr(err)
		if !m.down.Swap(true) {
			rt.cfg.Logf("cluster: member %s down: %v", m.primary, err)
		}
		return
	}
	m.mu.Lock()
	m.role, m.backend = hz.Role, hz.Backend
	m.mu.Unlock()
	if m.down.Swap(false) {
		rt.cfg.Logf("cluster: member %s back up", m.primary)
	}
	// Every healthy verdict — not just the up transition — checks for
	// pending spilled writes, so spills that predate this router process
	// or survived an interrupted replay still drain.
	rt.maybeReplay(m)
}

// probedHealthz is the slice of a member's /healthz the router records.
type probedHealthz struct {
	Status  string `json:"status"`
	Role    string `json:"role"`
	Backend string `json:"backend"`
}

func (rt *Router) fetchHealthz(ctx context.Context, base string) (probedHealthz, error) {
	var hz probedHealthz
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return hz, err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return hz, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return hz, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		return hz, fmt.Errorf("healthz body: %w", err)
	}
	return hz, nil
}

// memberGet issues a read against m, failing over to the follower. The
// primary is tried unless the router already believes it is down; a
// transport failure marks it down on the spot (the prober will notice
// recovery) and the follower, when configured, takes the read. The
// caller owns the response body.
func (rt *Router) memberGet(ctx context.Context, m *member, pathQuery string) (*http.Response, error) {
	tryPrimary := !m.down.Load()
	if tryPrimary {
		resp, err := rt.get(ctx, m.primary+pathQuery)
		if err == nil {
			return resp, nil
		}
		if ctx.Err() != nil {
			return nil, err // cancelled, not a member verdict
		}
		m.setErr(err)
		if !m.down.Swap(true) {
			rt.cfg.Logf("cluster: member %s down (read failed): %v", m.primary, err)
		}
	}
	if m.follower == "" {
		if !tryPrimary {
			// Down with no replica: one optimistic try against the
			// primary, so a recovered member serves reads before the
			// next probe tick.
			resp, err := rt.get(ctx, m.primary+pathQuery)
			if err == nil {
				m.down.Store(false)
				return resp, nil
			}
			return nil, fmt.Errorf("member %s down (no follower): %w", m.primary, err)
		}
		return nil, fmt.Errorf("member %s unreachable and no follower configured", m.primary)
	}
	resp, err := rt.get(ctx, m.follower+pathQuery)
	if err != nil {
		return nil, fmt.Errorf("member %s down and follower %s failed: %w", m.primary, m.follower, err)
	}
	m.failovers.Add(1)
	return resp, nil
}

func (rt *Router) get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return rt.cfg.Client.Do(req)
}

// memberGetJSON runs memberGet and decodes a 200 JSON body into out.
func (rt *Router) memberGetJSON(ctx context.Context, m *member, pathQuery string, out interface{}) error {
	resp, err := rt.memberGet(ctx, m, pathQuery)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("member %s: %s returned %d: %s",
			m.primary, pathQuery, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// scatter runs fn once per member concurrently and returns the first
// error. fn must be safe to run in parallel with the others.
func (rt *Router) scatter(fn func(i int, m *member) error) error {
	errs := make([]error, len(rt.members))
	var wg sync.WaitGroup
	for i, m := range rt.members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			errs[i] = fn(i, m)
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// --- router-level observability ---

// MemberStatus is one member's entry in the /cluster/stats payload.
type MemberStatus struct {
	URL             string       `json:"url"`
	Follower        string       `json:"follower,omitempty"`
	Healthy         bool         `json:"healthy"`
	Role            string       `json:"role,omitempty"`
	Backend         string       `json:"backend,omitempty"`
	Probes          int64        `json:"probes"`
	ProbeFailures   int64        `json:"probe_failures"`
	FailedOverReads int64        `json:"failed_over_reads"`
	Spill           *SpillStatus `json:"spill,omitempty"`
	LastError       string       `json:"last_error,omitempty"`
}

// ClusterStats is the GET /cluster/stats payload: the router's view of
// every member.
type ClusterStats struct {
	Members       []MemberStatus `json:"members"`
	DownMembers   int            `json:"down_members"`
	ProbeInterval string         `json:"probe_interval"`
}

// Stats snapshots the router's member table.
func (rt *Router) Stats() ClusterStats {
	st := ClusterStats{ProbeInterval: rt.cfg.ProbeInterval.String()}
	for _, m := range rt.members {
		m.mu.Lock()
		ms := MemberStatus{
			URL: m.primary, Follower: m.follower,
			Healthy: !m.down.Load(),
			Role:    m.role, Backend: m.backend,
			Probes:          m.probes.Load(),
			ProbeFailures:   m.probeFails.Load(),
			FailedOverReads: m.failovers.Load(),
			LastError:       m.lastErr,
		}
		m.mu.Unlock()
		if m.spill != nil {
			ms.Spill = m.spill.status()
		}
		if !ms.Healthy {
			st.DownMembers++
		}
		st.Members = append(st.Members, ms)
	}
	return st
}

func (rt *Router) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, rt.Stats())
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := rt.Stats()
	writeJSON(w, map[string]interface{}{
		"status":  "ok",
		"role":    "router",
		"members": len(st.Members),
		"down":    st.DownMembers,
	})
}

// --- shared HTTP helpers (same wire shapes as internal/server) ---

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
