package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Config describes the cluster a Router fronts.
type Config struct {
	// Members are the base URLs of the gss-server primaries that
	// partition the stream. The order is part of cluster identity only
	// insofar as the URLs are: ownership is a pure function of
	// (source node, member URL set).
	Members []string
	// Failover maps a member base URL to the base URL of its follower
	// replica (a gss-server started with -follow pointing at the
	// member). While the member is down, reads for its partition are
	// served by the follower; writes answer 429 until the member
	// returns, because followers reject writes.
	Failover map[string]string
	// ProbeInterval is how often the health prober polls every member's
	// /healthz (default 2s). A failed probe — or a failed proxied
	// request — marks the member down; a successful one marks it up.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default: ProbeInterval
	// clamped to [1s, 2s] — a fast probe cadence does not imply a
	// tiny answer budget).
	ProbeTimeout time.Duration
	// BatchSize is the /ingest decode batch size, overridable per
	// request with ?batch=N (default 512). Spill replay also forwards
	// in batches of this size.
	BatchSize int
	// SpillDir, when set, makes the router durably absorb writes for
	// down partitions instead of answering 429: each member gets an
	// append-only spill log under this directory, fsynced before the
	// write is acknowledged, and replayed into the member when the
	// prober sees it healthy again. See spill.go.
	SpillDir string
	// SpillMaxBytes bounds one member's spill log (default 64 MiB).
	// At the cap the router reverts to 429 + Retry-After.
	SpillMaxBytes int64
	// ReadTimeout is the default deadline budget for one read request
	// (proxied or scatter-gathered), covering every member attempt and
	// retry it fans into. 0 disables the deadline. Overridable per
	// request with ?timeout_ms= (0 there disables it too).
	ReadTimeout time.Duration
	// ReadRetries is how many extra attempts an idempotent member GET
	// gets after the first try (default 2; negative disables retries).
	// The attempt schedule alternates primary and follower when a
	// follower exists, so retries also power same-request fail-over.
	ReadRetries int
	// RetryBackoff is the base delay between read attempts (default
	// 25ms); each retry doubles it and the sleep is jittered ±50%.
	RetryBackoff time.Duration
	// MaxResponseBytes caps one member's response body on
	// scatter-gather JSON decodes (default 64 MiB). A response over the
	// cap fails that member's read instead of ballooning the router's
	// heap.
	MaxResponseBytes int64
	// AllowPartialReads enables opt-in degraded reads: a request
	// carrying ?partial=1 serves the surviving members' merge with
	// partial markers when some members are unreachable. Off by
	// default: ?partial=1 answers 400 and every scatter stays
	// all-or-nothing.
	AllowPartialReads bool
	// AllowMembershipChanges enables the live-migration admin endpoints
	// (POST /cluster/members to add a member, POST /cluster/drain to
	// remove one). Off by default: membership changes rewire write
	// routing, so they must be an explicit operator decision.
	AllowMembershipChanges bool
	// StateDir, when set, persists the router's cluster state: the
	// current member list (members.json — it overrides Config.Members on
	// restart once a membership change has committed) and the journal of
	// an in-flight migration (migration.json), which a restarting router
	// uses to roll the change back or forward. Without it, membership
	// changes still work but do not survive a router restart.
	StateDir string
	// Client issues all member requests. Defaults to a dedicated client
	// with per-host keep-alive sized for fan-outs.
	Client *http.Client
	// Logf receives operational warnings (member state transitions,
	// failed fan-outs). Defaults to log.Printf; inject to route or
	// silence.
	Logf func(format string, args ...interface{})
	// Metrics is the registry the router registers its instruments in
	// and serves at GET /metrics. Nil means a fresh private registry.
	Metrics *telemetry.Registry
	// SlowQuery, when non-nil, receives every routed request that ran
	// past its threshold, with the per-member spans the read discipline
	// records. The caller that built it closes it after the router
	// stops.
	SlowQuery *telemetry.SlowQueryLog
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		// Clamp the default to [1s, 2s] regardless of cadence: an
		// aggressive probe interval should not shrink the budget one
		// healthy-but-busy member gets to answer /healthz (a dead
		// member refuses the connection instantly either way, so the
		// floor costs down-detection nothing). Probes never overlap —
		// the prober waits out each sweep before rescheduling — so a
		// hung member only slows the cadence, never stacks probes.
		c.ProbeTimeout = c.ProbeInterval
		if c.ProbeTimeout > 2*time.Second {
			c.ProbeTimeout = 2 * time.Second
		}
		if c.ProbeTimeout < time.Second {
			c.ProbeTimeout = time.Second
		}
	}
	if c.BatchSize < 1 {
		c.BatchSize = 512
	}
	if c.ReadRetries == 0 {
		c.ReadRetries = defaultReadRetries
	} else if c.ReadRetries < 0 {
		c.ReadRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = defaultRetryBackoff
	}
	if c.MaxResponseBytes <= 0 {
		c.MaxResponseBytes = defaultMaxResponseBytes
	}
	if c.Client == nil {
		// A zero-value Transport would wait on raw OS timeouts (minutes)
		// for a silently dead member; bound the connect and header wait
		// like http.DefaultTransport does so reads issued between probe
		// ticks fail over in seconds. No overall request timeout — a
		// routed /ingest body may legitimately stream for a long time.
		c.Client = &http.Client{Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   10 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout:   10 * time.Second,
			ResponseHeaderTimeout: 30 * time.Second,
			MaxIdleConns:          64,
			MaxIdleConnsPerHost:   16,
		}}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// member is one partition of the cluster: a primary URL, an optional
// follower URL, and the router's view of the primary's health.
type member struct {
	primary  string
	follower string // "" when the partition has no replica
	spill    *spill // nil unless Config.SpillDir is set

	down atomic.Bool // router's view of the primary; false at start

	// Telemetry counters, registered per member URL by bindMember
	// (metrics.go) — the same series /metrics exposes, so the
	// /cluster/stats JSON view can never disagree with a scrape.
	probes     *telemetry.Counter
	probeFails *telemetry.Counter
	failovers  *telemetry.Counter // reads the follower served

	readRetries   *telemetry.Counter // extra attempts the read discipline issued
	deadlineFails *telemetry.Counter // reads that died on the deadline budget
	degradedReads *telemetry.Counter // partial merges served without this member
	copyFails     *telemetry.Counter // proxied bodies that died mid-copy

	mu      sync.Mutex
	lastErr string
	role    string // from the last successful /healthz probe
	backend string
}

func (m *member) setErr(err error) {
	m.mu.Lock()
	m.lastErr = err.Error()
	m.mu.Unlock()
}

// Router fronts a set of gss-server members with the single-node HTTP
// API. See the package comment for the routing rules. Membership is
// versioned: the current layout lives in an immutable topology behind
// an atomic pointer (see topology.go) and changes only through the
// migration protocol in migrate.go.
type Router struct {
	cfg Config

	// topo is the current member layout. Readers load it once per
	// request; only the migrator stores it, under topoMu.
	topo atomic.Pointer[topology]
	// topoMu is the write fence: write handlers hold it for reading for
	// the whole request, the migrator takes it for writing to swap the
	// topology — so a swap observes no in-flight write and an in-flight
	// write observes one consistent topology.
	topoMu sync.RWMutex

	// known tracks every member struct ever created (keyed by primary
	// URL), so a drained member's spill still closes and an added member
	// reuses its struct across migrations. Guarded by knownMu.
	knownMu sync.Mutex
	known   map[string]*member

	// mig is the in-flight migration, at most one at a time; lastMig is
	// the completed/failed record /cluster/stats reports. Guarded by
	// migMu.
	migMu   sync.Mutex
	mig     *migration
	lastMig *MigrationStatus

	// met holds the /metrics instruments (see metrics.go); always set.
	met *routerMetrics

	// ctx is cancelled by Close; every member request and fan-out
	// goroutine is bound to it, so Close stops in-flight work.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup // the prober loop, spill replays, migrations
	once   sync.Once
}

// New builds a Router over cfg.Members and starts its health prober.
// With Config.StateDir set, a member list committed by an earlier
// membership change overrides cfg.Members, and an interrupted
// migration's journal is recovered (rolled back or forward) in the
// background. Call Close to stop the prober and cancel in-flight
// fan-outs.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	rt := &Router{cfg: cfg, known: make(map[string]*member)}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	rt.met = newRouterMetrics(rt, reg, cfg.SlowQuery)
	rt.ctx, rt.cancel = context.WithCancel(context.Background())
	members := cfg.Members
	version := int64(1)
	if saved, err := rt.loadMembers(); err != nil {
		rt.cancel()
		return nil, err
	} else if saved != nil {
		members, version = saved.Members, saved.RingVersion
	}
	ring, err := NewRing(members)
	if err != nil {
		rt.cancel()
		return nil, err
	}
	mlist := make([]*member, ring.Size())
	for i := 0; i < ring.Size(); i++ {
		mlist[i], err = rt.memberFor(ring.Member(i))
		if err != nil {
			rt.closeSpills()
			rt.cancel()
			return nil, err
		}
	}
	rt.topo.Store(&topology{version: version, ring: ring, members: mlist, all: mlist})
	for primary, follower := range cfg.Failover {
		m := rt.lookupMember(strings.TrimRight(strings.TrimSpace(primary), "/"))
		if m == nil {
			rt.closeSpills()
			rt.cancel()
			return nil, fmt.Errorf("cluster: failover for %q: not a member", primary)
		}
		f := strings.TrimRight(strings.TrimSpace(follower), "/")
		if f == "" {
			rt.closeSpills()
			rt.cancel()
			return nil, fmt.Errorf("cluster: failover for %q: empty follower URL", primary)
		}
		m.follower = f
	}
	if err := rt.recoverMigration(); err != nil {
		rt.closeSpills()
		rt.cancel()
		return nil, err
	}
	rt.wg.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// memberFor returns the member struct for a (normalized) primary URL,
// creating it — with its spill log, when spilling is configured — on
// first sight.
func (rt *Router) memberFor(primary string) (*member, error) {
	rt.knownMu.Lock()
	defer rt.knownMu.Unlock()
	if m, ok := rt.known[primary]; ok {
		return m, nil
	}
	m := &member{primary: primary}
	if rt.cfg.SpillDir != "" {
		sp, err := openSpill(rt.cfg.SpillDir, primary, rt.cfg.SpillMaxBytes, rt.cfg.Logf)
		if err != nil {
			return nil, err
		}
		m.spill = sp
	}
	rt.met.bindMember(m)
	rt.known[primary] = m
	return m, nil
}

// lookupMember returns the member struct for a normalized primary URL,
// or nil if the router has never seen it.
func (rt *Router) lookupMember(primary string) *member {
	rt.knownMu.Lock()
	defer rt.knownMu.Unlock()
	return rt.known[primary]
}

// Close stops the health prober, cancels every in-flight member
// request, fan-out and spill replay, and closes the spill logs. The
// router must not receive requests afterwards.
func (rt *Router) Close() {
	rt.once.Do(func() {
		rt.cancel()
		rt.wg.Wait()
		rt.closeSpills()
	})
}

func (rt *Router) closeSpills() {
	rt.knownMu.Lock()
	defer rt.knownMu.Unlock()
	for _, m := range rt.known {
		if m.spill != nil {
			m.spill.close()
		}
	}
}

// Ring exposes the current partitioning ring (for tests and tooling).
func (rt *Router) Ring() *Ring { return rt.topology().ring }

// owner returns the member serving key's partition in the current
// topology. Read paths use it directly; write paths route through a
// topology snapshot instead, because they must pair each primary write
// with its handoff shadow write from the SAME topology version.
func (rt *Router) owner(key string) *member { return rt.topology().owner(key) }

// reqCtx derives a context that dies with either the request or the
// router, so Close cancels in-flight fan-outs without waiting for
// clients to hang up.
func (rt *Router) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(rt.ctx, cancel)
	return ctx, func() { stop(); cancel() }
}

// Handler returns the HTTP handler for the cluster-facing API. Every
// endpoint mirrors internal/server's wire shapes; /cluster/stats is the
// one addition.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(route string, h http.HandlerFunc) {
		mux.HandleFunc(route, rt.met.http.Wrap(route, h))
	}
	handle("/insert", rt.handleInsert)
	handle("/ingest", rt.handleIngest)
	handle("/edge", rt.proxyByKey("src"))
	handle("/successors", rt.proxyByKey("v"))
	handle("/precursors", rt.handlePrecursors)
	handle("/nodes", rt.handleNodes)
	handle("/nodeout", rt.proxyByKey("v"))
	handle("/nodein", rt.handleNodeIn)
	handle("/reachable", rt.handleReachable)
	handle("/heavy", rt.handleHeavy)
	handle("/stats", rt.handleStats)
	handle("/healthz", rt.handleHealthz)
	handle("/cluster/stats", rt.handleClusterStats)
	handle("/cluster/members", rt.handleMemberAdd)
	handle("/cluster/drain", rt.handleMemberDrain)
	// Snapshots are a per-member affair: each member's sketch is an
	// independent partition, and a concatenation of snapshots is not a
	// snapshot. Operators snapshot/restore members directly.
	perMember := func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotImplemented,
			"%s is per-member: call it on a member, not the router", r.URL.Path)
	}
	handle("/snapshot", perMember)
	handle("/restore", perMember)
	handle("/checkpoint", perMember)
	handle("/replica/stats", perMember)
	mux.Handle("/metrics", rt.met.reg.Handler())
	return mux
}

// Metrics returns the registry the router's instruments live in — the
// one /metrics serves.
func (rt *Router) Metrics() *telemetry.Registry { return rt.met.reg }

// --- health probing and member request plumbing ---

func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	rt.probeAll() // first verdict immediately, not one interval late
	t := time.NewTimer(rt.probeDelay())
	defer t.Stop()
	for {
		select {
		case <-rt.ctx.Done():
			return
		case <-t.C:
			rt.probeAll()
			t.Reset(rt.probeDelay())
		}
	}
}

// probeDelay jitters each prober tick across [interval/2, 3·interval/2)
// so multiple routers fronting the same members cannot synchronize
// into probe bursts.
func (rt *Router) probeDelay() time.Duration {
	i := rt.cfg.ProbeInterval
	return i/2 + time.Duration(rand.Int63n(int64(i)))
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, m := range rt.topology().all {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			rt.probe(m)
		}(m)
	}
	wg.Wait()
}

func (rt *Router) probe(m *member) {
	ctx, cancel := context.WithTimeout(rt.ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	m.probes.Add(1)
	hz, err := rt.fetchHealthz(ctx, m.primary)
	if err != nil {
		m.probeFails.Add(1)
		m.setErr(err)
		if !m.down.Swap(true) {
			rt.cfg.Logf("cluster: member %s down: %v", m.primary, err)
		}
		return
	}
	m.mu.Lock()
	m.role, m.backend = hz.Role, hz.Backend
	m.mu.Unlock()
	if m.down.Swap(false) {
		rt.cfg.Logf("cluster: member %s back up", m.primary)
	}
	// Every healthy verdict — not just the up transition — checks for
	// pending spilled writes, so spills that predate this router process
	// or survived an interrupted replay still drain.
	rt.maybeReplay(m)
}

// probedHealthz is the slice of a member's /healthz the router records.
type probedHealthz struct {
	Status  string `json:"status"`
	Role    string `json:"role"`
	Backend string `json:"backend"`
}

func (rt *Router) fetchHealthz(ctx context.Context, base string) (probedHealthz, error) {
	var hz probedHealthz
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return hz, err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return hz, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return hz, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		return hz, fmt.Errorf("healthz body: %w", err)
	}
	return hz, nil
}

// memberGet and memberGetJSON — the per-member read discipline with
// deadlines, retries and size caps — live in read.go.

func (rt *Router) get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	// Forward the edge-minted request ID so one slow scatter-gather
	// correlates across the router's and the members' logs.
	if id := telemetry.RequestID(ctx); id != "" {
		req.Header.Set(telemetry.HeaderRequestID, id)
	}
	return rt.cfg.Client.Do(req)
}

// scatter runs fn once per member concurrently and returns the
// per-member outcomes, index-aligned with members — callers resolve
// them through settleScatter (read.go), which applies the strict or
// partial contract. The member slice comes from one topology snapshot
// so a concurrent cutover cannot split a fan-out across two layouts.
// fn must be safe to run in parallel with the others.
func (rt *Router) scatter(members []*member, fn func(i int, m *member) error) []error {
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			errs[i] = fn(i, m)
		}(i, m)
	}
	wg.Wait()
	return errs
}

// --- router-level observability ---

// MemberStatus is one member's entry in the /cluster/stats payload.
type MemberStatus struct {
	URL             string       `json:"url"`
	Follower        string       `json:"follower,omitempty"`
	Healthy         bool         `json:"healthy"`
	Role            string       `json:"role,omitempty"`
	Backend         string       `json:"backend,omitempty"`
	Probes          int64        `json:"probes"`
	ProbeFailures   int64        `json:"probe_failures"`
	FailedOverReads int64        `json:"failed_over_reads"`
	ReadRetries     int64        `json:"read_retries"`
	DeadlineFails   int64        `json:"deadline_exceeded"`
	DegradedReads   int64        `json:"degraded_reads"`
	ProxyCopyFails  int64        `json:"proxy_copy_failures"`
	Spill           *SpillStatus `json:"spill,omitempty"`
	LastError       string       `json:"last_error,omitempty"`
	// Migration marks the member's role in an in-flight migration:
	// "source" (losing keys), "destination" (gaining keys), or "" when
	// it is not involved.
	Migration string `json:"migration,omitempty"`
}

// ClusterStats is the GET /cluster/stats payload: the router's view of
// every member, plus the versioned ring and any migration in flight.
// The whole payload derives from ONE topology snapshot, so a poll
// during a membership change sees either the old layout or the new one
// — never a half-applied ring.
type ClusterStats struct {
	Members       []MemberStatus `json:"members"`
	DownMembers   int            `json:"down_members"`
	ProbeInterval string         `json:"probe_interval"`
	// PartialReads counts scatter-gathered responses this router served
	// in partial mode with at least one member missing.
	PartialReads int64 `json:"partial_reads"`
	// RingVersion increments atomically at each migration cutover.
	RingVersion int64 `json:"ring_version"`
	// Ring lists the serving layout's member URLs in ring order.
	Ring []string `json:"ring"`
	// Migration is the in-flight membership change, if any.
	Migration *MigrationStatus `json:"migration,omitempty"`
	// LastMigration records the most recently finished (or failed)
	// membership change since this router started.
	LastMigration *MigrationStatus `json:"last_migration,omitempty"`
}

// Stats snapshots the router's member table.
func (rt *Router) Stats() ClusterStats {
	t := rt.topology()
	st := ClusterStats{
		ProbeInterval: rt.cfg.ProbeInterval.String(),
		PartialReads:  rt.met.partialReads.Value(),
		RingVersion:   t.version,
		Ring:          t.ring.Members(),
	}
	rt.migMu.Lock()
	mig, last := rt.mig, rt.lastMig
	rt.migMu.Unlock()
	var migStatus *MigrationStatus
	if mig != nil {
		s := mig.status()
		migStatus = &s
		st.Migration = migStatus
	}
	st.LastMigration = last
	for _, m := range t.all {
		m.mu.Lock()
		ms := MemberStatus{
			URL: m.primary, Follower: m.follower,
			Healthy: !m.down.Load(),
			Role:    m.role, Backend: m.backend,
			Probes:          m.probes.Value(),
			ProbeFailures:   m.probeFails.Value(),
			FailedOverReads: m.failovers.Value(),
			ReadRetries:     m.readRetries.Value(),
			DeadlineFails:   m.deadlineFails.Value(),
			DegradedReads:   m.degradedReads.Value(),
			ProxyCopyFails:  m.copyFails.Value(),
			LastError:       m.lastErr,
		}
		m.mu.Unlock()
		if m.spill != nil {
			ms.Spill = m.spill.status()
		}
		if mig != nil {
			ms.Migration = mig.roleOf(m)
		}
		if !ms.Healthy {
			st.DownMembers++
		}
		st.Members = append(st.Members, ms)
	}
	return st
}

func (rt *Router) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, rt.Stats())
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := rt.Stats()
	writeJSON(w, map[string]interface{}{
		"status":  "ok",
		"role":    "router",
		"members": len(st.Members),
		"down":    st.DownMembers,
	})
}

// --- shared HTTP helpers (same wire shapes as internal/server) ---

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
