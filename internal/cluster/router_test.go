package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/gss"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
)

var testCfg = gss.Config{Width: 256, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}

func silentLogf(string, ...interface{}) {}

// testMember is one in-process gss-server member.
type testMember struct {
	srv *server.Server
	ts  *httptest.Server
}

func (m *testMember) stop() {
	m.ts.Close()
	m.srv.Close()
}

// die stops the member mid-test and then holds its port. A test that
// kills a member while a router keeps probing the address must not
// simply free the port: test servers all draw from the host's
// ephemeral range, so another test — or another test *process* in a
// parallel package run — can bind it, and the prober (or a polling
// follower) would then see a healthy-looking foreign gss-server where
// a dead member should be. Holding the port keeps "down" meaning down.
func (m *testMember) die(t *testing.T) {
	t.Helper()
	addr := m.ts.Listener.Addr().String()
	m.stop()
	holdPort(t, addr)
}

// holdPort binds addr with a listener that accepts and immediately
// drops connections — connection-reset to every caller — until the
// test ends.
func holdPort(t *testing.T, addr string) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("re-binding dead member address %s: %v", addr, err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	return l
}

func startMember(t *testing.T, opt server.Options) *testMember {
	t.Helper()
	opt.Logf = silentLogf
	srv, err := server.NewWithOptions(testCfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return &testMember{srv: srv, ts: ts}
}

func startMembers(t *testing.T, n int, backend string) ([]*testMember, []string) {
	t.Helper()
	members := make([]*testMember, n)
	urls := make([]string, n)
	for i := range members {
		members[i] = startMember(t, server.Options{Backend: backend})
		urls[i] = members[i].ts.URL
		t.Cleanup(members[i].stop)
	}
	return members, urls
}

func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = silentLogf
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	return rt, ts
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

func postBody(t *testing.T, url, body string, out interface{}) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", url, raw, err)
		}
	}
	return resp, raw
}

// keysOwnedBy returns distinct node identifiers that the ring maps to
// member i — test streams are built from these so partition placement
// is known.
func keysOwnedBy(ring *Ring, i, n int) []string {
	var keys []string
	for k := 0; len(keys) < n; k++ {
		key := "owned" + strconv.Itoa(i) + "-" + strconv.Itoa(k)
		if ring.Owner(key) == i {
			keys = append(keys, key)
		}
	}
	return keys
}

func ndjsonBody(items []stream.Item) string {
	var buf bytes.Buffer
	if err := stream.EncodeNDJSON(&buf, items); err != nil {
		panic(err)
	}
	return buf.String()
}

// TestRouterPartitionsInserts: /insert splits by source-node owner;
// every member ends up with exactly its ring share and the router's
// read API sees everything.
func TestRouterPartitionsInserts(t *testing.T) {
	members, urls := startMembers(t, 3, sketch.BackendConcurrent)
	rt, ts := newTestRouter(t, Config{Members: urls})

	var items []stream.Item
	perMember := 8
	for i := range members {
		for _, src := range keysOwnedBy(rt.Ring(), i, perMember) {
			items = append(items, stream.Item{Src: src, Dst: "hub", Weight: 2})
		}
	}
	wires := make([]map[string]interface{}, len(items))
	for i, it := range items {
		wires[i] = map[string]interface{}{"src": it.Src, "dst": it.Dst, "weight": it.Weight}
	}
	body, _ := json.Marshal(wires)
	var res struct {
		Inserted int64 `json:"inserted"`
		Members  int   `json:"members"`
	}
	resp, raw := postBody(t, ts.URL+"/insert", string(body), &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %s", resp.StatusCode, raw)
	}
	if res.Inserted != int64(len(items)) || res.Members != 3 {
		t.Fatalf("inserted %d across %d members, want %d across 3", res.Inserted, res.Members, len(items))
	}
	for i, m := range members {
		if got := m.srv.Sketch().Stats().Items; got != int64(perMember) {
			t.Fatalf("member %d holds %d items, want %d", i, got, perMember)
		}
	}
	for _, it := range items {
		var er struct {
			Weight int64 `json:"weight"`
			Found  bool  `json:"found"`
		}
		getJSON(t, ts.URL+"/edge?src="+it.Src+"&dst=hub", &er)
		if !er.Found || er.Weight != 2 {
			t.Fatalf("edge %s->hub = (%d,%v), want (2,true)", it.Src, er.Weight, er.Found)
		}
	}
	// hub collected every in-edge: nodein scatters and sums.
	var in struct {
		In int64 `json:"in"`
	}
	getJSON(t, ts.URL+"/nodein?v=hub", &in)
	if in.In != int64(2*len(items)) {
		t.Fatalf("nodein(hub) = %d, want %d", in.In, 2*len(items))
	}
}

// TestRouterIngestSplitsStream: one NDJSON body fans out over
// per-member streaming /ingest requests; totals are exact.
func TestRouterIngestSplitsStream(t *testing.T) {
	members, urls := startMembers(t, 3, sketch.BackendSharded)
	_, ts := newTestRouter(t, Config{Members: urls, BatchSize: 64})

	items := stream.Generate(stream.DatasetConfig{Name: "ingest", Nodes: 200,
		Edges: 3000, DegreeSkew: 1.5, WeightSkew: 1.2, MaxWeight: 50, Seed: 7})
	var res struct {
		Mode     string `json:"mode"`
		Ingested int64  `json:"ingested"`
	}
	resp, raw := postBody(t, ts.URL+"/ingest", ndjsonBody(items), &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, raw)
	}
	if res.Ingested != int64(len(items)) {
		t.Fatalf("ingested %d, want %d", res.Ingested, len(items))
	}
	var total int64
	for _, m := range members {
		n := m.srv.Sketch().Stats().Items
		if n == 0 {
			t.Fatal("a member received no items — partitioning is degenerate")
		}
		total += n
	}
	if total != int64(len(items)) {
		t.Fatalf("members hold %d items total, want %d", total, len(items))
	}
}

// TestRouterIngestBadLine: a malformed NDJSON line yields 400 with the
// line number, like the single-node server.
func TestRouterIngestBadLine(t *testing.T) {
	_, urls := startMembers(t, 2, sketch.BackendConcurrent)
	_, ts := newTestRouter(t, Config{Members: urls})
	body := "{\"src\":\"a\",\"dst\":\"b\"}\nnot json\n"
	resp, raw := postBody(t, ts.URL+"/ingest", body, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d (%s), want 400", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte("line 2")) {
		t.Fatalf("error does not name the bad line: %s", raw)
	}
}

// TestRouterNodesLimitAcrossMembers: the union is deduplicated and
// counted before the limit cuts it, so total and truncated are global
// truths, not per-member ones.
func TestRouterNodesLimitAcrossMembers(t *testing.T) {
	_, urls := startMembers(t, 3, sketch.BackendConcurrent)
	rt, ts := newTestRouter(t, Config{Members: urls})

	// 9 sources spread over the members, all pointing at the shared
	// "hub" — 10 distinct nodes, with hub registered on every member.
	var items []stream.Item
	for i := 0; i < 3; i++ {
		for _, src := range keysOwnedBy(rt.Ring(), i, 3) {
			items = append(items, stream.Item{Src: src, Dst: "hub", Weight: 1})
		}
	}
	postBody(t, ts.URL+"/ingest", ndjsonBody(items), nil)

	var page struct {
		Nodes     []string `json:"nodes"`
		Total     int      `json:"total"`
		Truncated bool     `json:"truncated"`
	}
	getJSON(t, ts.URL+"/nodes?limit=0", &page)
	if page.Total != 10 || len(page.Nodes) != 10 || page.Truncated {
		t.Fatalf("limit=0: %d nodes, total %d, truncated %v; want 10/10/false",
			len(page.Nodes), page.Total, page.Truncated)
	}
	getJSON(t, ts.URL+"/nodes?limit=4", &page)
	if len(page.Nodes) != 4 || page.Total != 10 || !page.Truncated {
		t.Fatalf("limit=4: %d nodes, total %d, truncated %v; want 4/10/true",
			len(page.Nodes), page.Total, page.Truncated)
	}
	if !isSorted(page.Nodes) {
		t.Fatalf("page not sorted: %v", page.Nodes)
	}
	if code := getJSON(t, ts.URL+"/nodes?limit=-1", nil); code != http.StatusBadRequest {
		t.Fatalf("negative limit accepted: %d", code)
	}
}

func isSorted(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// TestRouterMemberDownMidBatch: a member dying mid-/ingest turns into
// 429 with exact accounting — what the live partitions confirmed versus
// what the dead one never acknowledged — and the router marks the
// member down for subsequent writes.
func TestRouterMemberDownMidBatch(t *testing.T) {
	members, urls := startMembers(t, 3, sketch.BackendConcurrent)
	rt, ts := newTestRouter(t, Config{Members: urls, ProbeInterval: time.Hour})

	// Kill member 1 before the upload; the router has not probed yet
	// (hour-long interval) so it discovers the death mid-batch.
	members[1].die(t)

	var items []stream.Item
	for i := 0; i < 3; i++ {
		for _, src := range keysOwnedBy(rt.Ring(), i, 10) {
			items = append(items, stream.Item{Src: src, Dst: "sink", Weight: 1})
		}
	}
	var res writeRes
	resp, raw := postBody(t, ts.URL+"/ingest", ndjsonBody(items), &res)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if res.Ingested != 20 || res.Dropped != 10 {
		t.Fatalf("ingested %d dropped %d, want 20/10", res.Ingested, res.Dropped)
	}
	st := rt.Stats()
	if st.DownMembers != 1 || st.Members[1].Healthy {
		t.Fatalf("router did not mark member 1 down: %+v", st)
	}

	// Writes for the dead partition now 429 up front, all-or-nothing.
	deadSrc := keysOwnedBy(rt.Ring(), 1, 1)[0]
	res = writeRes{}
	resp, raw = postBody(t, ts.URL+"/insert",
		fmt.Sprintf(`{"src":%q,"dst":"x"}`, deadSrc), &res)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("insert to down partition: status %d (%s), want 429", resp.StatusCode, raw)
	}
	if res.Inserted != 0 || res.Dropped != 1 {
		t.Fatalf("all-or-nothing violated: %s", raw)
	}

	// Live partitions keep accepting.
	liveSrc := keysOwnedBy(rt.Ring(), 0, 1)[0]
	resp, raw = postBody(t, ts.URL+"/insert",
		fmt.Sprintf(`{"src":%q,"dst":"x"}`, liveSrc), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert to live partition: status %d (%s)", resp.StatusCode, raw)
	}
}

// writeRes covers the write-path response shapes: the 200 bodies
// ("inserted"/"ingested") and the 429 body (accepted count + spilled
// + dropped).
type writeRes struct {
	Error    string `json:"error"`
	Inserted int64  `json:"inserted"`
	Ingested int64  `json:"ingested"`
	Spilled  int64  `json:"spilled"`
	Dropped  int64  `json:"dropped"`
}

// TestRouterReadFailover: a partition whose primary dies keeps serving
// reads from its follower replica, and writes for it answer 429.
func TestRouterReadFailover(t *testing.T) {
	members, urls := startMembers(t, 3, sketch.BackendConcurrent)

	// A real follower replica polling member 0's /snapshot.
	follower := startMember(t, server.Options{Backend: sketch.BackendConcurrent,
		FollowURL: members[0].ts.URL, FollowInterval: 20 * time.Millisecond})
	t.Cleanup(follower.stop)

	rt, ts := newTestRouter(t, Config{
		Members:       urls,
		Failover:      map[string]string{urls[0]: follower.ts.URL},
		ProbeInterval: 25 * time.Millisecond,
	})

	var items []stream.Item
	for i := 0; i < 3; i++ {
		for _, src := range keysOwnedBy(rt.Ring(), i, 6) {
			items = append(items, stream.Item{Src: src, Dst: "hub", Weight: 3})
		}
	}
	postBody(t, ts.URL+"/ingest", ndjsonBody(items), nil)

	// Wait until the follower has converged on member 0's state.
	want := members[0].srv.Sketch().Stats().Items
	deadline := time.Now().Add(5 * time.Second)
	for follower.srv.Sketch().Stats().Items != want {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d items, want %d",
				follower.srv.Sketch().Stats().Items, want)
		}
		time.Sleep(5 * time.Millisecond)
	}

	members[0].die(t)

	// Reads for partition 0 now come from the follower. The first read
	// may be the one that discovers the death and fails over.
	src0 := keysOwnedBy(rt.Ring(), 0, 1)[0]
	var er struct {
		Weight int64 `json:"weight"`
		Found  bool  `json:"found"`
	}
	getJSON(t, ts.URL+"/edge?src="+src0+"&dst=hub", &er)
	if !er.Found || er.Weight != 3 {
		t.Fatalf("failed-over edge read = (%d,%v), want (3,true)", er.Weight, er.Found)
	}
	st := rt.Stats()
	if st.Members[0].FailedOverReads == 0 {
		t.Fatalf("follower served no reads: %+v", st.Members[0])
	}

	// Writes wait for the primary: 429, never a silent 403 swallow.
	resp, raw := postBody(t, ts.URL+"/insert",
		fmt.Sprintf(`{"src":%q,"dst":"x"}`, src0), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("write to failed-over partition: status %d (%s), want 429", resp.StatusCode, raw)
	}

	// Scatter-gather queries survive the dead member too.
	var in struct {
		In int64 `json:"in"`
	}
	getJSON(t, ts.URL+"/nodein?v=hub", &in)
	if in.In != int64(3*len(items)) {
		t.Fatalf("nodein(hub) after failover = %d, want %d", in.In, 3*len(items))
	}
}

// TestRouterHealthzProbeRecordsRoles: the prober parses member /healthz
// and /cluster/stats exposes role and backend per member.
func TestRouterHealthzProbeRecordsRoles(t *testing.T) {
	_, urls := startMembers(t, 2, sketch.BackendSharded)
	rt, ts := newTestRouter(t, Config{Members: urls, ProbeInterval: 10 * time.Millisecond})

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := rt.Stats()
		if st.Members[0].Backend == sketch.BackendSharded && st.Members[0].Role == "primary" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probe never recorded member role/backend: %+v", st.Members[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	var hz struct {
		Status  string `json:"status"`
		Role    string `json:"role"`
		Members int    `json:"members"`
	}
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" || hz.Role != "router" || hz.Members != 2 {
		t.Fatalf("router healthz = %+v", hz)
	}
}

// TestRouterSnapshotIsPerMember: state endpoints are explicitly not
// cluster operations.
func TestRouterSnapshotIsPerMember(t *testing.T) {
	_, urls := startMembers(t, 1, sketch.BackendConcurrent)
	_, ts := newTestRouter(t, Config{Members: urls})
	for _, path := range []string{"/snapshot", "/restore", "/checkpoint", "/replica/stats"} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusNotImplemented {
			t.Fatalf("%s returned %d, want 501", path, code)
		}
	}
}

// TestRouterCloseStopsProberAndFanouts: the repo convention for
// loop-owning packages — everything the router spawned (prober,
// in-flight fan-out workers) exits on Close, proven by the goroutine
// count returning to baseline; and an in-flight fan-out blocked on a
// slow member is cancelled rather than awaited.
func TestRouterCloseStopsProberAndFanouts(t *testing.T) {
	before := runtime.NumGoroutine()
	client := &http.Client{}

	// A fake member whose /successors blocks until the request dies.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.Write([]byte(`{"status":"ok","role":"primary","backend":"concurrent"}`))
		case "/successors":
			<-r.Context().Done()
		}
	}))

	rt, err := New(Config{Members: []string{slow.URL},
		ProbeInterval: 10 * time.Millisecond, Client: client, Logf: silentLogf})
	if err != nil {
		t.Fatal(err)
	}

	// Launch a fan-out that can only finish by cancellation.
	done := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		rt.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/reachable?src=a&dst=b", nil))
		done <- rec.Code
	}()
	// Give the fan-out time to reach the member.
	time.Sleep(50 * time.Millisecond)

	rt.Close()
	select {
	case code := <-done:
		if code != http.StatusBadGateway {
			t.Fatalf("cancelled fan-out returned %d, want 502", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not cancel the in-flight fan-out")
	}
	rt.Close() // idempotent

	slow.Close()
	waitForGoroutines(t, before, client.CloseIdleConnections)
}

func waitForGoroutines(t *testing.T, want int, settle func()) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > want {
		if settle != nil {
			settle()
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to %d (now %d)", want, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
