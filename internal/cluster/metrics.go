package cluster

import (
	"repro/internal/telemetry"
)

// Metrics wiring for the router's /metrics exposition. Per-member
// counters (probes, retries, fail-overs, deadline deaths, degraded
// reads, proxy copy failures) live directly on the member struct as
// telemetry handles labeled by primary URL — /cluster/stats reads the
// same series, so the JSON view and the exposition can never disagree.
// Topology-level values (ring version, down members, migration phase,
// spill depth) are scrape-time funcs over the live structures.

// migrationPhaseValue maps the migration state machine onto a gauge:
// 0 when no migration is in flight, then one step per phase in
// protocol order. A scraper alerting on "phase > 0 for too long"
// catches a stuck migration regardless of where it stalled.
var migrationPhaseValue = map[string]float64{
	"":          0,
	"preflight": 1,
	"copy":      2,
	"catchup":   3,
	"handoff":   4,
	"cutover":   5,
	"drop":      6,
	"absorb":    7,
	"rollback":  8,
}

type routerMetrics struct {
	reg  *telemetry.Registry
	http *telemetry.HTTPMetrics

	partialReads *telemetry.Counter
}

func newRouterMetrics(rt *Router, reg *telemetry.Registry, slow *telemetry.SlowQueryLog) *routerMetrics {
	m := &routerMetrics{
		reg:  reg,
		http: telemetry.NewHTTPMetrics(reg, slow),
		partialReads: reg.Counter("gss_cluster_partial_reads_total",
			"Scatter-gathered responses served in partial mode with at least one member missing."),
	}
	reg.GaugeFunc("gss_cluster_ring_version", "Version of the serving ring; increments at each migration cutover.",
		func() float64 { return float64(rt.topology().version) })
	reg.GaugeFunc("gss_cluster_members", "Members in the serving ring.",
		func() float64 { return float64(len(rt.topology().members)) })
	reg.GaugeFunc("gss_cluster_down_members", "Members the prober currently believes are down.",
		func() float64 {
			var down float64
			for _, mem := range rt.topology().all {
				if mem.down.Load() {
					down++
				}
			}
			return down
		})
	reg.GaugeFunc("gss_cluster_migration_phase",
		"In-flight migration phase: 0 idle, 1 preflight, 2 copy, 3 catchup, 4 handoff, 5 cutover, 6 drop, 7 absorb, 8 rollback.",
		func() float64 {
			rt.migMu.Lock()
			mig := rt.mig
			rt.migMu.Unlock()
			if mig == nil {
				return 0
			}
			if v, ok := migrationPhaseValue[mig.phaseName()]; ok {
				return v
			}
			return -1
		})
	return m
}

// bindMember registers m's hot-path counters and scrape-time gauges
// under its primary URL. Registration is idempotent in the registry,
// so a member dropped and re-added across migrations keeps its counts.
func (rm *routerMetrics) bindMember(m *member) {
	l := telemetry.L("member", m.primary)
	reg := rm.reg
	m.probes = reg.Counter("gss_cluster_member_probes_total", "Health probes issued, by member.", l)
	m.probeFails = reg.Counter("gss_cluster_member_probe_failures_total", "Health probes that failed, by member.", l)
	m.failovers = reg.Counter("gss_cluster_member_failovers_total", "Reads the member's follower served, by member.", l)
	m.readRetries = reg.Counter("gss_cluster_member_read_retries_total", "Extra read attempts the retry discipline issued, by member.", l)
	m.deadlineFails = reg.Counter("gss_cluster_member_deadline_exceeded_total", "Reads that died on the deadline budget, by member.", l)
	m.degradedReads = reg.Counter("gss_cluster_member_degraded_reads_total", "Partial merges served without this member.", l)
	m.copyFails = reg.Counter("gss_cluster_member_proxy_copy_failures_total", "Proxied response bodies that died mid-copy, by member.", l)
	reg.GaugeFunc("gss_cluster_member_up", "1 when the router believes the member's primary is healthy.",
		func() float64 {
			if m.down.Load() {
				return 0
			}
			return 1
		}, l)
	reg.GaugeFunc("gss_cluster_member_spill_pending_items", "Spilled items absorbed but not yet replayed, by member.",
		func() float64 {
			if m.spill == nil {
				return 0
			}
			return float64(m.spill.status().PendingItems)
		}, l)
	reg.GaugeFunc("gss_cluster_member_spill_pending_bytes", "Spill log bytes on disk, by member.",
		func() float64 {
			if m.spill == nil {
				return 0
			}
			return float64(m.spill.status().PendingBytes)
		}, l)
	reg.CounterFunc("gss_cluster_member_spill_replayed_items_total", "Spilled items delivered to the recovered member.",
		func() int64 {
			if m.spill == nil {
				return 0
			}
			return m.spill.status().ReplayedItems
		}, l)
}
