package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/oplog"
	"repro/internal/stream"
)

// Spill: durable write absorption for down partitions. Without it, a
// write touching a down member answers 429 and the producer carries
// the retry burden for as long as the outage lasts. With
// Config.SpillDir set, the router instead appends the down partition's
// items to a per-member append-only spill log (fsynced before the ack,
// so a router crash does not lose absorbed writes) and acknowledges
// them as "spilled"; when the health prober sees the member again, a
// replay goroutine drains the log into the member in order and then
// retires the segments. The spill is bounded by Config.SpillMaxBytes —
// past the cap the router falls back to 429 + Retry-After, the same
// backpressure convention as the bounded ingest queue, because an
// outage that outlasts the budget must slow producers down rather
// than fill the disk.
//
// Replay interleaves with live writes when the member comes back
// (fresh writes forward directly while older spilled items drain),
// which is sound for sketch semantics: inserts are commutative
// weight accumulation, so only the multiset of items matters, not
// their order. The cluster equivalence suite proves exactly that.

// defaultSpillMaxBytes bounds one member's spill log when
// Config.SpillMaxBytes is zero.
const defaultSpillMaxBytes = 64 << 20

// errSpillFull reports an append refused by the spill budget.
var errSpillFull = errors.New("cluster: spill log full")

// spill is one member's durable write buffer.
type spill struct {
	log *oplog.Log
	max int64

	mu  sync.Mutex
	pos uint64 // next sequence to replay toward the member

	spilledItems  atomic.Int64
	replayedItems atomic.Int64
	replays       atomic.Int64 // completed drains
	replaying     atomic.Bool  // CAS guard: at most one replay per member
}

// spillDirName flattens a member base URL into a directory name: the
// scheme separator and every path-hostile byte become '_', keeping the
// host and port readable so operators can match directories to members.
func spillDirName(memberURL string) string {
	s := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-':
			return r
		default:
			return '_'
		}
	}, memberURL)
	return strings.Trim(s, "_")
}

// openSpill opens (or creates) the spill log for one member. A
// non-empty log left by a previous router run starts fully pending:
// the first healthy probe of the member replays it.
func openSpill(dir, memberURL string, maxBytes int64, logf func(string, ...interface{})) (*spill, error) {
	if maxBytes <= 0 {
		maxBytes = defaultSpillMaxBytes
	}
	l, err := oplog.Open(oplog.Options{
		Dir: filepath.Join(dir, spillDirName(memberURL)),
		// Sync every append: the spill ack is a durability promise made
		// on the degraded path, where throughput is already secondary.
		SyncEvery: -1,
		Logf:      logf,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: spill for %s: %w", memberURL, err)
	}
	return &spill{log: l, max: maxBytes, pos: l.OldestSeq()}, nil
}

// append absorbs one batch, refusing it when the log is at budget.
// The budget check is against bytes already on disk, so one batch may
// overshoot the cap slightly; the next one is refused.
func (sp *spill) append(items []stream.Item) error {
	if len(items) == 0 {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.log.Stats().SizeBytes >= sp.max {
		return errSpillFull
	}
	if _, _, err := sp.log.Append(items); err != nil {
		return err
	}
	sp.spilledItems.Add(int64(len(items)))
	return nil
}

// appendEncoded absorbs one batch of already-encoded GSS1 payloads —
// the binary ingest plane's spill path: a down partition's records go
// from the wire to the spill log without a decode/re-encode round
// trip, and come back out of oplog.ReadFrom as the same items the
// NDJSON path would have spilled. Budget semantics match append.
func (sp *spill) appendEncoded(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.log.Stats().SizeBytes >= sp.max {
		return errSpillFull
	}
	if _, _, err := sp.log.AppendEncoded(payloads); err != nil {
		return err
	}
	sp.spilledItems.Add(int64(len(payloads)))
	return nil
}

// atBudget reports whether the log is at its byte budget, meaning an
// append right now would be refused. Advisory: a concurrent append can
// land between this check and the caller's, which only means one more
// batch of overshoot past the cap.
func (sp *spill) atBudget() bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.log.Stats().SizeBytes >= sp.max
}

// pendingItems is how many absorbed items the member has not yet seen.
func (sp *spill) pendingItems() int64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return int64(sp.log.NextSeq() - sp.pos)
}

func (sp *spill) close() { _ = sp.log.Close() }

// maybeReplay starts the replay goroutine for m if it has pending
// spilled items and no replay is already running. Called from the
// prober on every healthy verdict — not just down→up transitions — so
// a spill populated before the router restarted, or left over from a
// replay the member interrupted by going down again, still drains.
// While a membership change is in flight replay stays paused (the
// migration preflight refuses to start over a pending spill, and a
// replay racing the copy phase would corrupt the drop accounting);
// the next probe tick after the change finishes resumes it.
func (rt *Router) maybeReplay(m *member) {
	sp := m.spill
	if sp == nil || sp.pendingItems() == 0 || rt.migrating() {
		return
	}
	if !sp.replaying.CompareAndSwap(false, true) {
		return
	}
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		defer sp.replaying.Store(false)
		rt.replaySpill(m)
	}()
}

// replaySpill drains m's spill log in sequence order, one batch at a
// time, and retires the log once it is empty. Each batch is routed by
// the CURRENT topology, not blindly at m: a membership change that
// completed while the spill sat pending may have moved some of the
// spilled keys to another member, and commutative inserts make the
// re-routed delivery equivalent. Any failure just returns: the target
// either went down (the prober will notice and re-kick the replay on
// recovery) or the router is closing.
func (rt *Router) replaySpill(m *member) {
	sp := m.spill
	var drained int64
	for {
		if rt.ctx.Err() != nil {
			return
		}
		sp.mu.Lock()
		pos := sp.pos
		sp.mu.Unlock()
		batch := make([]stream.Item, 0, rt.cfg.BatchSize)
		next, err := sp.log.ReadFrom(pos, rt.cfg.BatchSize, func(it stream.Item) error {
			batch = append(batch, it)
			return nil
		})
		if err != nil {
			rt.cfg.Logf("cluster: reading spill for %s at %d: %v", m.primary, pos, err)
			return
		}
		if len(batch) == 0 {
			// Drained. Retire the replayed records — unless an append
			// slipped in after the read, in which case the next probe
			// tick restarts the replay.
			sp.mu.Lock()
			if sp.log.NextSeq() == sp.pos {
				if err := sp.log.Rotate(); err == nil {
					sp.log.Retain(sp.pos)
				}
			}
			sp.mu.Unlock()
			sp.replays.Add(1)
			if drained > 0 {
				rt.cfg.Logf("cluster: member %s spill drained (%d items replayed)", m.primary, drained)
			}
			return
		}
		t := rt.topology()
		groups := make(map[*member][]stream.Item)
		for _, it := range batch {
			groups[t.owner(it.Src)] = append(groups[t.owner(it.Src)], it)
		}
		for target, group := range groups {
			if _, err := rt.forwardInsert(rt.ctx, target, group); err != nil {
				if isTransport(err) && rt.ctx.Err() == nil {
					target.setErr(err)
					if !target.down.Swap(true) {
						rt.cfg.Logf("cluster: member %s down (spill replay failed): %v", target.primary, err)
					}
				}
				return
			}
		}
		sp.mu.Lock()
		sp.pos = next
		sp.mu.Unlock()
		sp.replayedItems.Add(int64(len(batch)))
		drained += int64(len(batch))
	}
}

// spillStatus snapshots one member's spill counters for /cluster/stats.
func (sp *spill) status() *SpillStatus {
	sp.mu.Lock()
	pending := int64(sp.log.NextSeq() - sp.pos)
	sp.mu.Unlock()
	return &SpillStatus{
		SpilledItems:  sp.spilledItems.Load(),
		PendingItems:  pending,
		PendingBytes:  sp.log.Stats().SizeBytes,
		ReplayedItems: sp.replayedItems.Load(),
		Replays:       sp.replays.Load(),
		Replaying:     sp.replaying.Load(),
	}
}

// SpillStatus is the spill block of one member's /cluster/stats entry.
type SpillStatus struct {
	SpilledItems  int64 `json:"spilled_items"`  // absorbed since the router started
	PendingItems  int64 `json:"pending_items"`  // absorbed but not yet replayed
	PendingBytes  int64 `json:"pending_bytes"`  // spill log size on disk
	ReplayedItems int64 `json:"replayed_items"` // delivered to the recovered member
	Replays       int64 `json:"replays"`        // completed drains
	Replaying     bool  `json:"replaying"`      // a drain is running right now
}
