// Package vf2 implements VF2-style subgraph isomorphism over labeled
// directed graphs. The paper uses VF2 on top of GSS for the subgraph
// matching experiment (§VII-I): the target graph is accessed purely
// through the neighbor/edge-label interface, so the same matcher runs
// against an exact window store or a sketch-backed view.
package vf2

import (
	"errors"
	"fmt"
)

// Graph is the target-graph access interface the matcher needs. A
// label of 0 means "unlabeled".
type Graph interface {
	// Nodes enumerates candidate nodes for unanchored pattern nodes.
	Nodes() []string
	// Successors returns the 1-hop successors of v.
	Successors(v string) []string
	// Precursors returns the 1-hop precursors of v.
	Precursors(v string) []string
	// EdgeLabel returns the label of directed edge (src,dst), if any.
	EdgeLabel(src, dst string) (uint32, bool)
}

// Edge is a directed, optionally labeled pattern edge between pattern
// node indices. Label 0 matches any target label.
type Edge struct {
	From, To int
	Label    uint32
}

// Pattern is a small query graph over N pattern nodes indexed 0..N-1.
type Pattern struct {
	N     int
	Edges []Edge
}

// Validate checks index ranges and non-emptiness.
func (p Pattern) Validate() error {
	if p.N <= 0 {
		return errors.New("vf2: pattern has no nodes")
	}
	for _, e := range p.Edges {
		if e.From < 0 || e.From >= p.N || e.To < 0 || e.To >= p.N {
			return fmt.Errorf("vf2: edge %v out of range [0,%d)", e, p.N)
		}
		if e.From == e.To {
			return fmt.Errorf("vf2: self loop on pattern node %d", e.From)
		}
	}
	return nil
}

// DefaultMaxSteps bounds the backtracking search of FindOne. Hub-heavy
// targets can make subgraph isomorphism (NP-complete in general)
// explode; a bounded search returns "not found" instead of hanging,
// which under the Fig. 15 metric scores as an (honest) miss.
const DefaultMaxSteps = 2_000_000

// FindOne searches g for an injective embedding of p and returns the
// assignment pattern-index -> target node. Search order follows pattern
// connectivity so each node after the first is anchored on an already
// matched neighbor whenever the pattern is connected. The search is
// budgeted at DefaultMaxSteps candidate checks.
func FindOne(g Graph, p Pattern) (map[int]string, bool) {
	return FindOneBudget(g, p, DefaultMaxSteps)
}

// FindOneBudget is FindOne with an explicit step budget (<= 0 means
// unbounded).
func FindOneBudget(g Graph, p Pattern, maxSteps int) (map[int]string, bool) {
	assign, status := FindOneStatus(g, p, maxSteps)
	return assign, status == StatusFound
}

// Status reports how a budgeted search ended.
type Status int

const (
	// StatusFound: an embedding was found.
	StatusFound Status = iota
	// StatusNotFound: the search space was exhausted without a match —
	// a definitive negative.
	StatusNotFound
	// StatusBudget: the step budget ran out first — the search is
	// inconclusive.
	StatusBudget
	// StatusInvalid: the pattern failed validation.
	StatusInvalid
)

// FindOneStatus is FindOneBudget distinguishing a definitive "no
// embedding" from an inconclusive budget exhaustion.
func FindOneStatus(g Graph, p Pattern, maxSteps int) (map[int]string, Status) {
	if err := p.Validate(); err != nil {
		return nil, StatusInvalid
	}
	st := &state{g: g, p: p, assign: make([]string, p.N), used: make(map[string]int), budget: maxSteps}
	st.planOrder()
	if st.match(0) {
		out := make(map[int]string, p.N)
		for i, v := range st.assign {
			out[i] = v
		}
		return out, StatusFound
	}
	if st.spent {
		return nil, StatusBudget
	}
	return nil, StatusNotFound
}

type state struct {
	g      Graph
	p      Pattern
	order  []int // pattern nodes in match order
	assign []string
	used   map[string]int
	budget int // remaining candidate checks; <= 0 at start means unbounded
	spent  bool
}

// planOrder computes a most-constrained-first ordering: after the
// highest-degree start node, each position takes the unplaced pattern
// node with the most edges into the placed prefix, so candidate sets
// shrink as fast as possible.
func (s *state) planOrder() {
	degree := make([]int, s.p.N)
	for _, e := range s.p.Edges {
		degree[e.From]++
		degree[e.To]++
	}
	placed := make([]bool, s.p.N)
	s.order = make([]int, 0, s.p.N)
	for len(s.order) < s.p.N {
		next, bestScore := -1, -1
		for i := 0; i < s.p.N; i++ {
			if placed[i] {
				continue
			}
			score := 0
			for _, e := range s.p.Edges {
				if (e.From == i && placed[e.To]) || (e.To == i && placed[e.From]) {
					score += s.p.N // edges into the prefix dominate
				}
			}
			score += degree[i]
			if score > bestScore {
				next, bestScore = i, score
			}
		}
		placed[next] = true
		s.order = append(s.order, next)
	}
}

// candidatesFor picks the tightest available candidate set for a
// pattern node: the neighbor set of whichever matched pattern-neighbor
// has the fewest neighbors in the target (dynamic most-constrained
// anchoring), then filters it by the anchor edge's label so labeled
// hubs do not blow up the branching factor. Unanchored nodes (start of
// a component) fall back to the full node universe.
func (s *state) candidatesFor(node int) []string {
	var (
		best     []string
		bestEdge Edge
		forward  bool
		anchored bool
	)
	for _, e := range s.p.Edges {
		var c []string
		var fwd bool
		switch {
		case e.From == node && s.assignMatched(e.To):
			c, fwd = s.g.Precursors(s.assign[e.To]), false
		case e.To == node && s.assignMatched(e.From):
			c, fwd = s.g.Successors(s.assign[e.From]), true
		default:
			continue
		}
		if !anchored || len(c) < len(best) {
			best, bestEdge, forward, anchored = c, e, fwd, true
		}
	}
	if !anchored {
		return s.g.Nodes()
	}
	if bestEdge.Label == 0 {
		return best
	}
	// Keep only neighbors connected by the anchor edge's label.
	filtered := best[:0:0]
	for _, cand := range best {
		var label uint32
		var ok bool
		if forward {
			label, ok = s.g.EdgeLabel(s.assign[bestEdge.From], cand)
		} else {
			label, ok = s.g.EdgeLabel(cand, s.assign[bestEdge.To])
		}
		if ok && label == bestEdge.Label {
			filtered = append(filtered, cand)
		}
	}
	return filtered
}

func (s *state) match(pos int) bool {
	if pos == len(s.order) {
		return true
	}
	node := s.order[pos]
	candidates := s.candidatesFor(node)
	for _, cand := range candidates {
		if s.spent {
			return false
		}
		if s.budget > 0 {
			s.budget--
			if s.budget == 0 {
				s.spent = true
				return false
			}
		}
		if _, taken := s.used[cand]; taken {
			continue
		}
		if !s.consistent(node, cand) {
			continue
		}
		s.assign[node] = cand
		s.used[cand] = node
		if s.match(pos + 1) {
			return true
		}
		delete(s.used, cand)
		s.assign[node] = ""
	}
	return false
}

// consistent checks every pattern edge between node and already-matched
// nodes against the target, including labels.
func (s *state) consistent(node int, cand string) bool {
	for _, e := range s.p.Edges {
		var src, dst string
		switch {
		case e.From == node && s.assignMatched(e.To):
			src, dst = cand, s.assign[e.To]
		case e.To == node && s.assignMatched(e.From):
			src, dst = s.assign[e.From], cand
		default:
			continue
		}
		label, ok := s.g.EdgeLabel(src, dst)
		if !ok || (e.Label != 0 && label != e.Label) {
			return false
		}
	}
	return true
}

func (s *state) assignMatched(i int) bool { return s.assign[i] != "" }
