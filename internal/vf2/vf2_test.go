package vf2

import (
	"sort"
	"testing"
)

// mapGraph is a tiny labeled graph for tests.
type mapGraph struct {
	adj map[string]map[string]uint32
}

func newMapGraph(edges ...[3]string) *mapGraph {
	g := &mapGraph{adj: map[string]map[string]uint32{}}
	for _, e := range edges {
		if g.adj[e[0]] == nil {
			g.adj[e[0]] = map[string]uint32{}
		}
		label := uint32(0)
		if e[2] != "" {
			label = uint32(e[2][0])
		}
		g.adj[e[0]][e[1]] = label
		if g.adj[e[1]] == nil {
			g.adj[e[1]] = map[string]uint32{}
		}
	}
	return g
}

func (g *mapGraph) Nodes() []string {
	var out []string
	for v := range g.adj {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (g *mapGraph) Successors(v string) []string {
	var out []string
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

func (g *mapGraph) Precursors(v string) []string {
	var out []string
	for u, os := range g.adj {
		if _, ok := os[v]; ok {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}

func (g *mapGraph) EdgeLabel(src, dst string) (uint32, bool) {
	l, ok := g.adj[src][dst]
	return l, ok
}

func TestValidate(t *testing.T) {
	if err := (Pattern{}).Validate(); err == nil {
		t.Fatal("empty pattern accepted")
	}
	if err := (Pattern{N: 2, Edges: []Edge{{From: 0, To: 5}}}).Validate(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := (Pattern{N: 2, Edges: []Edge{{From: 1, To: 1}}}).Validate(); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := (Pattern{N: 3, Edges: []Edge{{From: 0, To: 1}, {From: 1, To: 2}}}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFindPath(t *testing.T) {
	g := newMapGraph([3]string{"a", "b", ""}, [3]string{"b", "c", ""}, [3]string{"c", "d", ""})
	p := Pattern{N: 3, Edges: []Edge{{From: 0, To: 1}, {From: 1, To: 2}}}
	assign, ok := FindOne(g, p)
	if !ok {
		t.Fatal("path pattern not found")
	}
	// Verify the assignment is a real embedding.
	for _, e := range p.Edges {
		if _, ok := g.EdgeLabel(assign[e.From], assign[e.To]); !ok {
			t.Fatalf("assignment %v is not an embedding", assign)
		}
	}
}

func TestFindTriangleDirected(t *testing.T) {
	g := newMapGraph([3]string{"a", "b", ""}, [3]string{"b", "c", ""}, [3]string{"c", "a", ""},
		[3]string{"x", "y", ""})
	tri := Pattern{N: 3, Edges: []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}}}
	if _, ok := FindOne(g, tri); !ok {
		t.Fatal("directed triangle not found")
	}
	// Remove the closing edge: no triangle.
	g2 := newMapGraph([3]string{"a", "b", ""}, [3]string{"b", "c", ""})
	if _, ok := FindOne(g2, tri); ok {
		t.Fatal("found triangle in a path")
	}
}

func TestInjectivity(t *testing.T) {
	// A 2-cycle a<->b cannot host a directed 3-cycle pattern with
	// distinct nodes.
	g := newMapGraph([3]string{"a", "b", ""}, [3]string{"b", "a", ""})
	tri := Pattern{N: 3, Edges: []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}}}
	if assign, ok := FindOne(g, tri); ok {
		t.Fatalf("non-injective match: %v", assign)
	}
}

func TestLabelsConstrain(t *testing.T) {
	g := newMapGraph([3]string{"a", "b", "x"}, [3]string{"b", "c", "y"})
	pGood := Pattern{N: 3, Edges: []Edge{{From: 0, To: 1, Label: 'x'}, {From: 1, To: 2, Label: 'y'}}}
	if _, ok := FindOne(g, pGood); !ok {
		t.Fatal("correctly labeled pattern not found")
	}
	pBad := Pattern{N: 3, Edges: []Edge{{From: 0, To: 1, Label: 'y'}, {From: 1, To: 2, Label: 'y'}}}
	if _, ok := FindOne(g, pBad); ok {
		t.Fatal("mislabeled pattern matched")
	}
	pWild := Pattern{N: 3, Edges: []Edge{{From: 0, To: 1}, {From: 1, To: 2}}}
	if _, ok := FindOne(g, pWild); !ok {
		t.Fatal("wildcard labels must match anything")
	}
}

func TestBackwardAnchor(t *testing.T) {
	// Pattern where node 1 is discovered via an incoming edge: 0<-1.
	g := newMapGraph([3]string{"p", "q", ""})
	p := Pattern{N: 2, Edges: []Edge{{From: 1, To: 0}}}
	assign, ok := FindOne(g, p)
	if !ok || assign[1] != "p" || assign[0] != "q" {
		t.Fatalf("backward anchor failed: %v ok=%v", assign, ok)
	}
}

func TestDisconnectedPattern(t *testing.T) {
	g := newMapGraph([3]string{"a", "b", ""}, [3]string{"c", "d", ""})
	p := Pattern{N: 4, Edges: []Edge{{From: 0, To: 1}, {From: 2, To: 3}}}
	assign, ok := FindOne(g, p)
	if !ok {
		t.Fatal("disconnected pattern not found")
	}
	seen := map[string]bool{}
	for _, v := range assign {
		if seen[v] {
			t.Fatalf("assignment reuses node: %v", assign)
		}
		seen[v] = true
	}
}

func TestDiamondNeedsBothEdges(t *testing.T) {
	// Pattern: 0->1, 0->2, 1->3, 2->3 (diamond). Graph missing 2->3.
	g := newMapGraph([3]string{"a", "b", ""}, [3]string{"a", "c", ""}, [3]string{"b", "d", ""})
	diamond := Pattern{N: 4, Edges: []Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}}}
	if _, ok := FindOne(g, diamond); ok {
		t.Fatal("diamond matched with a missing edge")
	}
	g.adj["c"]["d"] = 0
	if _, ok := FindOne(g, diamond); !ok {
		t.Fatal("diamond not found after completing the graph")
	}
}

func TestBudgetExhaustionReturnsNotFound(t *testing.T) {
	// A dense graph with an impossible pattern: unbounded search would
	// grind; a 1-step budget must bail out immediately without panics.
	var edges [][3]string
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if i != j {
				edges = append(edges, [3]string{string(rune('A' + i)), string(rune('A' + j)), ""})
			}
		}
	}
	g := newMapGraph(edges...)
	// Pattern wants a labeled edge that never exists.
	p := Pattern{N: 4, Edges: []Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 0, Label: 'z'}}}
	if _, ok := FindOneBudget(g, p, 50); ok {
		t.Fatal("impossible pattern matched")
	}
	// With no budget the same search still terminates (finite graph)
	// and still finds nothing.
	if _, ok := FindOneBudget(g, p, 0); ok {
		t.Fatal("impossible pattern matched unbounded")
	}
	// Sanity: a feasible pattern is found within a generous budget.
	p2 := Pattern{N: 3, Edges: []Edge{{From: 0, To: 1}, {From: 1, To: 2}}}
	if _, ok := FindOneBudget(g, p2, 100000); !ok {
		t.Fatal("feasible pattern not found")
	}
}
